package algo_test

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/tdgraph/tdgraph/internal/algo"
	"github.com/tdgraph/tdgraph/internal/graph"
	"github.com/tdgraph/tdgraph/internal/graph/gen"
)

// chain builds 0→1→2→3→4 with weight 2 each.
func chain(t *testing.T) *graph.Snapshot {
	t.Helper()
	b := graph.NewBuilder(5)
	for v := 0; v < 4; v++ {
		b.AddEdge(graph.VertexID(v), graph.VertexID(v+1), 2)
	}
	return b.Snapshot()
}

func TestSSSPOnChain(t *testing.T) {
	g := chain(t)
	s := algo.Reference(algo.NewSSSP(0), g)
	for v := 0; v < 5; v++ {
		if want := float64(2 * v); s[v] != want {
			t.Fatalf("dist[%d] = %v, want %v", v, s[v], want)
		}
	}
}

func TestSSSPUnreachable(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1, 1)
	s := algo.Reference(algo.NewSSSP(0), b.Snapshot())
	if !math.IsInf(s[2], 1) {
		t.Fatalf("dist[2] = %v, want +inf", s[2])
	}
}

func TestCCOnComponents(t *testing.T) {
	// Two symmetric components {0,1,2} and {3,4}.
	b := graph.NewBuilder(5)
	for _, e := range [][2]graph.VertexID{{0, 1}, {1, 0}, {1, 2}, {2, 1}, {3, 4}, {4, 3}} {
		b.AddEdge(e[0], e[1], 1)
	}
	s := algo.Reference(algo.NewCC(), b.Snapshot())
	want := []float64{0, 0, 0, 3, 3}
	for v := range want {
		if s[v] != want[v] {
			t.Fatalf("label[%d] = %v, want %v", v, s[v], want[v])
		}
	}
}

// TestPageRankFixpoint verifies the reference satisfies the PageRank
// equation at every vertex.
func TestPageRankFixpoint(t *testing.T) {
	edges := gen.RMAT(gen.RMATConfig{NumVertices: 500, NumEdges: 2500, A: 0.57, B: 0.19, C: 0.19, Seed: 4, MaxWeight: 4})
	g := graph.NewBuilderFromEdges(500, edges).Snapshot()
	a := algo.NewPageRank()
	s := algo.Reference(a, g)
	for v := 0; v < g.NumVertices; v++ {
		sum := a.Base(graph.VertexID(v))
		ins := g.InNeighborsOf(graph.VertexID(v))
		for _, u := range ins {
			sum += a.Damping() * s[u] / float64(g.OutDegree(u))
		}
		if math.Abs(sum-s[v]) > 1e-4 {
			t.Fatalf("fixpoint violated at %d: eq=%v state=%v", v, sum, s[v])
		}
	}
}

// TestAdsorptionFixpoint verifies the weighted-share equation.
func TestAdsorptionFixpoint(t *testing.T) {
	edges := gen.RMAT(gen.RMATConfig{NumVertices: 300, NumEdges: 1500, A: 0.57, B: 0.19, C: 0.19, Seed: 5, MaxWeight: 8})
	g := graph.NewBuilderFromEdges(300, edges).Snapshot()
	a := algo.NewAdsorption(300, 5)
	s := algo.Reference(a, g)
	for v := 0; v < g.NumVertices; v++ {
		sum := a.Base(graph.VertexID(v))
		ins := g.InNeighborsOf(graph.VertexID(v))
		iws := g.InWeightsOf(graph.VertexID(v))
		for i, u := range ins {
			tw := algo.TotalOutWeight(g, u)
			sum += a.Damping() * s[u] * float64(iws[i]) / tw
		}
		if math.Abs(sum-s[v]) > 1e-4 {
			t.Fatalf("fixpoint violated at %d: eq=%v state=%v", v, sum, s[v])
		}
	}
}

// TestMonotonicReferenceMatchesDijkstra cross-checks the worklist
// reference against an independent Dijkstra implementation on random
// graphs.
func TestMonotonicReferenceMatchesDijkstra(t *testing.T) {
	f := func(seed int64) bool {
		edges := gen.ErdosRenyi(gen.ErdosRenyiConfig{NumVertices: 120, NumEdges: 600, Seed: seed, MaxWeight: 16})
		g := graph.NewBuilderFromEdges(120, edges).Snapshot()
		got := algo.Reference(algo.NewSSSP(0), g)
		want := dijkstra(g, 0)
		return algo.StatesEqual(got, want, 1e-9) < 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// dijkstra is a deliberately independent oracle (linear-scan PQ).
func dijkstra(g *graph.Snapshot, root graph.VertexID) []float64 {
	n := g.NumVertices
	dist := make([]float64, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[root] = 0
	for {
		best := -1
		for v := 0; v < n; v++ {
			if !done[v] && !math.IsInf(dist[v], 1) && (best < 0 || dist[v] < dist[best]) {
				best = v
			}
		}
		if best < 0 {
			break
		}
		done[best] = true
		ns := g.OutNeighbors(graph.VertexID(best))
		ws := g.OutWeights(graph.VertexID(best))
		for i, w := range ns {
			if cand := dist[best] + float64(ws[i]); cand < dist[w] {
				dist[w] = cand
			}
		}
	}
	return dist
}

func TestInitialStates(t *testing.T) {
	g := chain(t)
	s := algo.InitialStates(algo.NewSSSP(0), g)
	if s[0] != 0 || !math.IsInf(s[1], 1) {
		t.Fatalf("initial states wrong: %v", s[:2])
	}
	pr := algo.NewPageRank()
	s = algo.InitialStates(pr, g)
	for _, v := range s {
		if v != pr.Base(0) {
			t.Fatalf("accumulative initial state %v, want %v", v, pr.Base(0))
		}
	}
}

func TestStatesEqual(t *testing.T) {
	inf := math.Inf(1)
	if i := algo.StatesEqual([]float64{1, inf}, []float64{1, inf}, 0); i >= 0 {
		t.Fatalf("inf==inf mismatch at %d", i)
	}
	if i := algo.StatesEqual([]float64{1, 2}, []float64{1, 3}, 0.5); i != 1 {
		t.Fatalf("want mismatch at 1, got %d", i)
	}
}

func TestKindString(t *testing.T) {
	if algo.Accumulative.String() != "accumulative" || algo.Monotonic.String() != "monotonic" {
		t.Fatal("Kind.String broken")
	}
}
