package algo

import (
	"math"

	"github.com/tdgraph/tdgraph/internal/graph"
)

// SSSP is single-source shortest paths from Root, the paper's primary
// monotonic benchmark [61]. States are path lengths; unreachable vertices
// hold +inf.
type SSSP struct {
	Root graph.VertexID
	Eps  float64
}

// NewSSSP returns SSSP from root with the default epsilon.
func NewSSSP(root graph.VertexID) *SSSP {
	return &SSSP{Root: root, Eps: 1e-9}
}

func (a *SSSP) Name() string     { return "sssp" }
func (a *SSSP) Kind() Kind       { return Monotonic }
func (a *SSSP) Epsilon() float64 { return a.Eps }

// InitialValue is 0 at the root and +inf elsewhere.
func (a *SSSP) InitialValue(v graph.VertexID) float64 {
	if v == a.Root {
		return 0
	}
	return math.Inf(1)
}

// Propagate extends a path across an edge.
func (a *SSSP) Propagate(srcVal float64, w float32) float64 {
	if math.IsInf(srcVal, 1) {
		return srcVal
	}
	return srcVal + float64(w)
}

// Better prefers shorter paths.
func (a *SSSP) Better(x, y float64) bool { return x < y-a.Eps }

// CC computes, for every vertex, the minimum vertex ID among its ancestors
// (including itself) — forward min-label propagation, the monotonic
// formulation used by KickStarter [61]. On a symmetrised edge list this is
// exactly weakly-connected component labelling; on a directed graph it is
// "least ID that can reach v". The examples symmetrise when they want
// undirected components.
type CC struct {
	Eps float64
}

// NewCC returns the connected-components labelling algorithm.
func NewCC() *CC { return &CC{Eps: 0} }

func (a *CC) Name() string     { return "cc" }
func (a *CC) Kind() Kind       { return Monotonic }
func (a *CC) Epsilon() float64 { return a.Eps }

// InitialValue labels each vertex with its own ID.
func (a *CC) InitialValue(v graph.VertexID) float64 { return float64(v) }

// Propagate carries the label unchanged across the edge.
func (a *CC) Propagate(srcVal float64, _ float32) float64 { return srcVal }

// Better prefers smaller labels.
func (a *CC) Better(x, y float64) bool { return x < y }
