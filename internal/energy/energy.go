// Package energy provides the analytic power/area/energy model standing
// in for the paper's McPAT + DDR4-power-calculator methodology (§4.4).
// Dynamic energy is event counts × per-event energies; static energy is
// leakage power × simulated time. Accelerator power and area are carried
// as constants from the paper's Table 3 (they come from RTL synthesis,
// which this repository cannot reproduce — see DESIGN.md).
package energy

import (
	"github.com/tdgraph/tdgraph/internal/stats"
)

// PerEventPJ holds per-event dynamic energies in picojoules, loosely
// calibrated to published 14-22 nm figures: SRAM accesses grow with
// array size, a DRAM line transfer costs on the order of 10 nJ, and a
// mesh flit-hop a fraction of a nanojoule.
type PerEventPJ struct {
	CoreOp    float64
	L1Access  float64
	L2Access  float64
	LLCAccess float64
	DRAMLine  float64
	NoCFlit   float64
	AccelOp   float64
}

// DefaultPerEvent returns the calibrated event energies.
func DefaultPerEvent() PerEventPJ {
	return PerEventPJ{
		CoreOp:    12,
		L1Access:  1.2,
		L2Access:  6.5,
		LLCAccess: 22,
		DRAMLine:  10500,
		NoCFlit:   260,
		AccelOp:   2.5,
	}
}

// StaticPowerW holds leakage/background power in watts for the whole
// 64-core chip and the memory subsystem.
type StaticPowerW struct {
	Cores  float64
	Caches float64
	DRAM   float64
}

// DefaultStatic returns chip-level static power consistent with a ~190 W
// TDP socket (Table 3's %TDP column implies TDP ≈ 0.647 W / 0.0034).
func DefaultStatic() StaticPowerW {
	return StaticPowerW{Cores: 38, Caches: 12, DRAM: 9}
}

// Breakdown is the Fig 19 energy decomposition in joules.
type Breakdown struct {
	Core  float64
	Cache float64
	NoC   float64
	DRAM  float64
	Accel float64
}

// Total returns the summed energy.
func (b Breakdown) Total() float64 { return b.Core + b.Cache + b.NoC + b.DRAM + b.Accel }

// Model evaluates energies from a collector filled by a simulated run.
type Model struct {
	Event  PerEventPJ
	Static StaticPowerW
	// ClockHz converts simulated cycles to seconds (Table 1: 2.5 GHz).
	ClockHz float64
	// AccelPowerW is the per-chip accelerator power (Table 3 per-core
	// milliwatts × core count).
	AccelPowerW float64
}

// NewModel returns the default model for the named accelerator (""
// means no accelerator attached).
func NewModel(accelName string) Model {
	m := Model{
		Event:   DefaultPerEvent(),
		Static:  DefaultStatic(),
		ClockHz: 2.5e9,
	}
	if row, ok := Table3Row(accelName); ok {
		// Table 3 reports per-engine power; one engine per core.
		m.AccelPowerW = row.PowerMW / 1000 * 64
	}
	return m
}

// Evaluate computes the energy breakdown of a run from its counters and
// total simulated cycles.
func (m Model) Evaluate(c *stats.Collector, cycles float64) Breakdown {
	secs := cycles / m.ClockHz
	pj := func(v uint64, e float64) float64 { return float64(v) * e * 1e-12 }
	var b Breakdown
	ops := c.Get(stats.CtrCyclesCompute) // compute cycles ≈ op count × CPI
	b.Core = pj(ops, m.Event.CoreOp) + m.Static.Cores*secs
	l1 := c.Get(stats.CtrL1Hits) + c.Get(stats.CtrL1Misses)
	l2 := c.Get(stats.CtrL2Hits) + c.Get(stats.CtrL2Misses)
	llc := c.Get(stats.CtrLLCHits) + c.Get(stats.CtrLLCMisses)
	b.Cache = pj(l1, m.Event.L1Access) + pj(l2, m.Event.L2Access) +
		pj(llc, m.Event.LLCAccess) + m.Static.Caches*secs
	b.NoC = pj(c.Get(stats.CtrNoCFlits), m.Event.NoCFlit)
	b.DRAM = pj(c.Get(stats.CtrDRAMReads)+c.Get(stats.CtrDRAMWrites), m.Event.DRAMLine) +
		m.Static.DRAM*secs
	accelEvents := c.Get(stats.CtrPrefetchedEdges) + c.Get(stats.CtrTrackingVisits) +
		c.Get(stats.CtrHTableProbes) + c.Get(stats.CtrEventsEnqueued)
	b.Accel = pj(accelEvents, m.Event.AccelOp) + m.AccelPowerW*secs
	return b
}

// PerfPerWatt returns performance (1/seconds) per watt for a run.
func (m Model) PerfPerWatt(c *stats.Collector, cycles float64) float64 {
	if cycles <= 0 {
		return 0
	}
	secs := cycles / m.ClockHz
	e := m.Evaluate(c, cycles).Total()
	if e <= 0 {
		return 0
	}
	watts := e / secs
	return (1 / secs) / watts
}
