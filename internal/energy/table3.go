package energy

// Table3Entry is one row of the paper's Table 3: per-engine power and
// area under typical operating conditions at a commercial 14 nm process.
// These values come from the paper's RTL synthesis and are carried as
// constants (see DESIGN.md substitutions).
type Table3Entry struct {
	Name       string
	PowerMW    float64
	PercentTDP float64
	AreaMM2    float64
	// PercentCore is the area relative to one general-purpose core.
	PercentCore float64
}

// Table3 returns the paper's Table 3 rows in order.
func Table3() []Table3Entry {
	return []Table3Entry{
		{Name: "HATS", PowerMW: 425, PercentTDP: 0.22, AreaMM2: 0.007, PercentCore: 0.38},
		{Name: "Minnow", PowerMW: 849, PercentTDP: 0.43, AreaMM2: 0.017, PercentCore: 0.92},
		{Name: "PHI", PowerMW: 493, PercentTDP: 0.25, AreaMM2: 0.008, PercentCore: 0.43},
		{Name: "DepGraph", PowerMW: 562, PercentTDP: 0.29, AreaMM2: 0.011, PercentCore: 0.61},
		{Name: "TDGraph", PowerMW: 647, PercentTDP: 0.34, AreaMM2: 0.013, PercentCore: 0.73},
	}
}

// Table3Row returns the row for an accelerator name, normalising the
// TDGraph variant names to their hardware row.
func Table3Row(name string) (Table3Entry, bool) {
	key := name
	switch name {
	case "TDGraph-H", "TDGraph-H-without", "TDGraph-H-GRASP":
		key = "TDGraph"
	case "JetStream", "JetStream-with", "GraphPulse":
		// Not in Table 3; approximate with DepGraph-class power.
		key = "DepGraph"
	}
	for _, e := range Table3() {
		if e.Name == key {
			return e, true
		}
	}
	return Table3Entry{}, false
}

// TDGraphStorageBits documents the accelerator's on-chip storage (§4.4):
// 4.8 Kbit Fetched Buffer plus 6.1 Kbit stack.
const (
	FetchedBufferBits = 4800
	StackBits         = 6100
)
