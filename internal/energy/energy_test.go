package energy_test

import (
	"testing"

	"github.com/tdgraph/tdgraph/internal/energy"
	"github.com/tdgraph/tdgraph/internal/stats"
)

func TestTable3(t *testing.T) {
	rows := energy.Table3()
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	td, ok := energy.Table3Row("TDGraph")
	if !ok || td.PowerMW != 647 || td.PercentCore != 0.73 {
		t.Fatalf("TDGraph row wrong: %+v ok=%v", td, ok)
	}
	// Variant names normalise to the hardware row.
	for _, n := range []string{"TDGraph-H", "TDGraph-H-without", "TDGraph-H-GRASP"} {
		if r, ok := energy.Table3Row(n); !ok || r.Name != "TDGraph" {
			t.Fatalf("variant %s not normalised", n)
		}
	}
	if _, ok := energy.Table3Row("Ligra-o"); ok {
		t.Fatal("software scheme found in Table 3")
	}
}

func TestEvaluateBreakdown(t *testing.T) {
	m := energy.NewModel("TDGraph-H")
	c := stats.NewCollector()
	c.Add(stats.CtrCyclesCompute, 1_000_000)
	c.Add(stats.CtrL1Hits, 500_000)
	c.Add(stats.CtrL2Hits, 100_000)
	c.Add(stats.CtrLLCHits, 50_000)
	c.Add(stats.CtrDRAMReads, 10_000)
	c.Add(stats.CtrNoCFlits, 30_000)
	c.Add(stats.CtrPrefetchedEdges, 200_000)
	b := m.Evaluate(c, 2_000_000)
	if b.Core <= 0 || b.Cache <= 0 || b.NoC <= 0 || b.DRAM <= 0 || b.Accel <= 0 {
		t.Fatalf("breakdown has non-positive component: %+v", b)
	}
	if b.Total() <= b.Core {
		t.Fatal("total not a sum")
	}
	// More DRAM events must give more DRAM energy.
	c.Add(stats.CtrDRAMReads, 1_000_000)
	b2 := m.Evaluate(c, 2_000_000)
	if b2.DRAM <= b.DRAM {
		t.Fatal("DRAM energy not monotone in accesses")
	}
}

func TestPerfPerWatt(t *testing.T) {
	m := energy.NewModel("HATS")
	c := stats.NewCollector()
	c.Add(stats.CtrCyclesCompute, 1000)
	fast := m.PerfPerWatt(c, 1_000_000)
	slow := m.PerfPerWatt(c, 10_000_000)
	if fast <= slow {
		t.Fatalf("perf/W not decreasing with time: %v vs %v", fast, slow)
	}
	if m.PerfPerWatt(c, 0) != 0 {
		t.Fatal("zero-cycle run should give 0")
	}
}
