package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"path/filepath"
	"testing"
	"time"

	tdgraph "github.com/tdgraph/tdgraph"
	"github.com/tdgraph/tdgraph/internal/fault"
	"github.com/tdgraph/tdgraph/internal/graph"
	"github.com/tdgraph/tdgraph/internal/stats"
	"github.com/tdgraph/tdgraph/internal/stream"
	"github.com/tdgraph/tdgraph/internal/wal"
)

// testWorkload builds a small deterministic streaming run: a synthetic
// graph, half loaded as warmup, the rest streamed in nBatches mixed
// add/delete batches.
func testWorkload(t *testing.T, nBatches int) *stream.Workload {
	t.Helper()
	const nv = 64
	edges := make([]graph.Edge, 0, 320)
	for i := 0; i < 320; i++ {
		src := uint32((i * 7) % nv)
		dst := uint32((i*13 + 5) % nv)
		if src == dst {
			dst = (dst + 1) % nv
		}
		edges = append(edges, graph.Edge{Src: src, Dst: dst, Weight: float32(1 + i%9)})
	}
	return stream.Build(edges, nv, stream.Config{
		WarmupFraction: 0.5,
		BatchSize:      20,
		AddFraction:    0.75,
		NumBatches:     nBatches,
		Seed:           11,
	})
}

func bootstrapFrom(w *stream.Workload) func() (*tdgraph.Session, error) {
	return func() (*tdgraph.Session, error) {
		return tdgraph.NewSession(tdgraph.NewSSSP(0), w.Warmup, w.NumVertices, tdgraph.SessionOptions{})
	}
}

func pipelineConfig(t *testing.T, w *stream.Workload) PipelineConfig {
	t.Helper()
	return PipelineConfig{
		Bootstrap:       bootstrapFrom(w),
		Algorithm:       tdgraph.NewSSSP(0),
		WAL:             wal.Options{Dir: t.TempDir(), Sync: wal.SyncEachBatch},
		CheckpointPath:  filepath.Join(t.TempDir(), "ckpt.tds"),
		CheckpointEvery: 3,
	}
}

func statesEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// referenceStates applies the whole workload directly to a session —
// the durable path must land on exactly these states.
func referenceStates(t *testing.T, w *stream.Workload) []float64 {
	t.Helper()
	s, err := bootstrapFrom(w)()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range w.Batches {
		if _, err := s.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	return append([]float64(nil), s.States()...)
}

// TestPipelineRestartResumes: a pipeline closed cleanly and reopened
// over the same directories resumes at the right sequence and finishes
// with states byte-identical to an uninterrupted run.
func TestPipelineRestartResumes(t *testing.T) {
	w := testWorkload(t, 6)
	want := referenceStates(t, w)
	cfg := pipelineConfig(t, w)

	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range w.Batches[:4] {
		if err := p.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	p2, err := NewPipeline(cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if p2.Seq() != 4 {
		t.Fatalf("resumed at seq %d, want 4", p2.Seq())
	}
	for _, b := range w.Batches[4:] {
		if err := p2.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := p2.Close(); err != nil {
		t.Fatal(err)
	}
	if !statesEqual(p2.Session().States(), want) {
		t.Fatal("resumed run diverged from uninterrupted run")
	}
}

// TestPipelineRecoversFromWALOnly: delete every checkpoint after a run;
// recovery must rebuild purely from bootstrap + full WAL replay.
func TestPipelineRecoversFromWALOnly(t *testing.T) {
	w := testWorkload(t, 5)
	want := referenceStates(t, w)
	cfg := pipelineConfig(t, w)
	cfg.CheckpointPath = "" // no checkpoints at all

	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range w.Batches {
		if err := p.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	p2, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Seq() != uint64(len(w.Batches)) {
		t.Fatalf("replayed to seq %d, want %d", p2.Seq(), len(w.Batches))
	}
	if got := p2.Collector().Get(stats.CtrWALReplayed); got != uint64(len(w.Batches)) {
		t.Fatalf("replayed %d records, want %d", got, len(w.Batches))
	}
	if !statesEqual(p2.Session().States(), want) {
		t.Fatal("WAL-only recovery diverged")
	}
}

// TestPipelineWALFaultIsNonDurable: a torn write surfaces as an
// *IngestError in the "wal" stage, which the supervisor treats as
// not-yet-durable (safe to re-send).
func TestPipelineWALFaultIsNonDurable(t *testing.T) {
	w := testWorkload(t, 2)
	cfg := pipelineConfig(t, w)
	in, err := fault.Parse("wal-torn:40", 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg.WAL.FS = in.FS(wal.OSFS{})

	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ingErr := p.Ingest(w.Batches[0])
	if ingErr == nil {
		ingErr = p.Ingest(w.Batches[1])
	}
	if ingErr == nil {
		t.Fatal("torn write never surfaced")
	}
	var ie *IngestError
	if !errors.As(ingErr, &ie) {
		t.Fatalf("untyped ingest error %T: %v", ingErr, ingErr)
	}
	if ie.Stage != "wal" || ie.Durable() {
		t.Fatalf("stage %q durable=%v, want non-durable wal stage", ie.Stage, ie.Durable())
	}
	if !errors.Is(ingErr, fault.ErrInjected) {
		t.Fatalf("lost the injected sentinel: %v", ingErr)
	}
}

// syncFailFS fails wal File.Sync while *failures > 0 — a transient
// fsync error on the WAL's post-write path.
type syncFailFS struct {
	wal.FS
	failures *int
}

func (f syncFailFS) Create(path string) (wal.File, error) {
	file, err := f.FS.Create(path)
	if err != nil {
		return nil, err
	}
	return &syncFailFile{File: file, failures: f.failures}, nil
}

type syncFailFile struct {
	wal.File
	failures *int
}

func (f *syncFailFile) Sync() error {
	if *f.failures > 0 {
		*f.failures--
		return errors.New("injected fsync failure")
	}
	return f.File.Sync()
}

// TestPipelineSyncFailureNotReSent: a post-append fsync failure is the
// "wal-sync" stage and counts as durable-class — the record is in the
// log file, so recovery resurrects the batch and re-sending it would
// double-apply. A fresh pipeline over the same directories must
// already hold it.
func TestPipelineSyncFailureNotReSent(t *testing.T) {
	w := testWorkload(t, 5)
	want := referenceStates(t, w)
	cfg := pipelineConfig(t, w)
	failures := 0
	cfg.WAL.FS = syncFailFS{FS: wal.OSFS{}, failures: &failures}

	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range w.Batches[:2] {
		if err := p.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}

	failures = 1
	ingErr := p.Ingest(w.Batches[2])
	var ie *IngestError
	if !errors.As(ingErr, &ie) {
		t.Fatalf("untyped ingest error %T: %v", ingErr, ingErr)
	}
	if ie.Stage != "wal-sync" || !ie.Durable() {
		t.Fatalf("stage %q durable=%v, want durable wal-sync stage", ie.Stage, ie.Durable())
	}
	var nd *wal.NotDurableError
	if !errors.As(ingErr, &nd) {
		t.Fatalf("wal.NotDurableError lost through the ingest wrapper: %v", ingErr)
	}

	// Supervisor semantics: abandon the pipeline, recover. The batch
	// whose barrier failed must come back via replay, not a re-send.
	p2, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Seq() != 3 {
		t.Fatalf("recovered seq %d, want 3 (failed-barrier batch replayed)", p2.Seq())
	}
	for _, b := range w.Batches[3:] {
		if err := p2.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := p2.Close(); err != nil {
		t.Fatal(err)
	}
	if !statesEqual(p2.Session().States(), want) {
		t.Fatal("recovery after fsync failure diverged from reference")
	}
}

// TestServerSyncFailureRestarts: the serve loop converts a transient
// fsync failure into one supervised restart — no poisoning, no
// double-apply — and still lands on the reference states.
func TestServerSyncFailureRestarts(t *testing.T) {
	w := testWorkload(t, 6)
	want := referenceStates(t, w)
	cfg := pipelineConfig(t, w)
	failures := 1 // the very first WAL barrier fails, then the disk heals
	cfg.WAL.FS = syncFailFS{FS: wal.OSFS{}, failures: &failures}

	srv := NewServer(ServerConfig{
		Pipeline: cfg,
		Queue:    QueueConfig{Capacity: 4, MaxBatchUpdates: 1},
	})
	if err := srv.Run(context.Background(), NewSliceSource(w.Batches)); err != nil {
		t.Fatal(err)
	}
	col := srv.Collector()
	if got := col.Get(stats.CtrServeRestarts); got != 1 {
		t.Fatalf("restarts = %d, want 1", got)
	}
	if got := col.Get(stats.CtrServePoisoned); got != 0 {
		t.Fatalf("poisoned %d batches; a wal-sync failure must never poison", got)
	}
	if !statesEqual(srv.Pipeline().Session().States(), want) {
		t.Fatal("states after supervised fsync-failure restart diverged")
	}
}

// TestNewPipelineRejectsRecoveryGap: when every checkpoint generation
// is gone but WAL retention already truncated the prefix those
// checkpoints covered, recovery must refuse loudly instead of serving
// silently wrong state.
func TestNewPipelineRejectsRecoveryGap(t *testing.T) {
	w := testWorkload(t, 6)
	cfg := pipelineConfig(t, w)
	cfg.WAL.SegmentBytes = 1 // seal every record so retention can advance

	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range w.Batches {
		if err := p.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Sanity: with its checkpoints intact the state reopens fine.
	p2, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Seq() != uint64(len(w.Batches)) {
		t.Fatalf("reopened at seq %d, want %d", p2.Seq(), len(w.Batches))
	}
	if err := p2.Close(); err != nil {
		t.Fatal(err)
	}

	// Every generation lost: the checkpointless bootstrap cannot bridge
	// the retained log's truncated prefix.
	cfg.CheckpointPath = ""
	_, err = NewPipeline(cfg)
	if !errors.Is(err, ErrRecoveryGap) {
		t.Fatalf("bootstrap over a truncated WAL returned %v, want ErrRecoveryGap", err)
	}
}

// flakySource fails each batch read a fixed number of times before
// serving it — the retry layer must absorb exactly that many failures.
type flakySource struct {
	inner     Source
	failures  int // failures to serve per batch
	remaining int
}

func (f *flakySource) Next(ctx context.Context) ([]graph.Update, error) {
	if f.remaining > 0 {
		f.remaining--
		return nil, errors.New("flaky: transient delivery failure")
	}
	b, err := f.inner.Next(ctx)
	f.remaining = f.failures
	return b, err
}

func TestRetrySourceAbsorbsTransientFailures(t *testing.T) {
	w := testWorkload(t, 4)
	clock := newFakeClock()
	flaky := &flakySource{inner: NewSliceSource(w.Batches), failures: 2, remaining: 2}
	src := NewRetrySource(flaky, NewBackoff(1), NewBreaker(10, 0, clock), clock, 1)

	var got int
	for {
		b, err := src.Next(context.Background())
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(b) == 0 {
			t.Fatal("empty batch")
		}
		got++
	}
	if got != len(w.Batches) {
		t.Fatalf("delivered %d batches, want %d", got, len(w.Batches))
	}
	// 2 failures per batch read, plus the EOF read's preceding failures.
	if r := src.Retries(); r != uint64(2*(len(w.Batches)+1)) {
		t.Fatalf("retries = %d, want %d", r, 2*(len(w.Batches)+1))
	}
}

func TestRetrySourceGivesUp(t *testing.T) {
	clock := newFakeClock()
	dead := FuncSource(func(context.Context) ([]graph.Update, error) {
		return nil, errors.New("down hard")
	})
	src := NewRetrySource(dead, NewBackoff(1), NewBreaker(100, 0, clock), clock, 1)
	src.MaxAttempts = 4
	_, err := src.Next(context.Background())
	if !errors.Is(err, ErrSourceGivenUp) {
		t.Fatalf("want ErrSourceGivenUp, got %v", err)
	}
	if src.Retries() != 4 {
		t.Fatalf("retries = %d, want 4", src.Retries())
	}
}

// TestRetrySourceBreakerGates: once the breaker opens, the source waits
// out the reset timeout instead of burning attempts.
func TestRetrySourceBreakerGates(t *testing.T) {
	clock := newFakeClock()
	calls := 0
	dead := FuncSource(func(context.Context) ([]graph.Update, error) {
		calls++
		return nil, errors.New("down")
	})
	br := NewBreaker(2, 30*time.Second, clock)
	src := NewRetrySource(dead, NewBackoff(1), br, clock, 1)
	src.MaxAttempts = 6
	_, err := src.Next(context.Background())
	if !errors.Is(err, ErrSourceGivenUp) {
		t.Fatal(err)
	}
	if br.Opens() == 0 {
		t.Fatal("breaker never opened")
	}
	// Open-state waits show up as ResetTimeout sleeps on the fake clock.
	var gated bool
	for _, d := range clock.slept {
		if d == br.ResetTimeout {
			gated = true
		}
	}
	if !gated {
		t.Fatalf("no reset-timeout wait recorded: %v", clock.slept)
	}
	if calls >= 7 {
		t.Fatalf("breaker did not reduce pressure: %d calls", calls)
	}
}

// TestServerEndToEnd: the full service — retrying source, bounded
// queue, durable pipeline — lands on the reference states and counts
// its work.
func TestServerEndToEnd(t *testing.T) {
	w := testWorkload(t, 6)
	want := referenceStates(t, w)
	clock := newFakeClock()
	flaky := &flakySource{inner: NewSliceSource(w.Batches), failures: 1, remaining: 1}
	src := NewRetrySource(flaky, NewBackoff(1), NewBreaker(5, 0, clock), clock, 1)

	srv := NewServer(ServerConfig{
		Pipeline: pipelineConfig(t, w),
		// MaxBatchUpdates 1 forbids coalescing so the ingested count is
		// exact; granularity growth has its own tests.
		Queue: QueueConfig{Capacity: 4, MaxBatchUpdates: 1},
	})
	if err := srv.Run(context.Background(), src); err != nil {
		t.Fatal(err)
	}
	col := srv.Collector()
	if got := col.Get(stats.CtrServeIngested); got != uint64(len(w.Batches)) {
		t.Fatalf("ingested %d, want %d", got, len(w.Batches))
	}
	if col.Get(stats.CtrServeRetries) == 0 {
		t.Fatal("source retries not folded into stats")
	}
	if !statesEqual(srv.Pipeline().Session().States(), want) {
		t.Fatal("served states diverged from reference")
	}
}

// TestServerGracefulCancel: cancelling the context stops admission,
// drains the queue, and Run returns nil with durable state on disk.
func TestServerGracefulCancel(t *testing.T) {
	w := testWorkload(t, 6)
	cfg := pipelineConfig(t, w)

	ctx, cancel := context.WithCancel(context.Background())
	fed := 0
	src := FuncSource(func(ctx context.Context) ([]graph.Update, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if fed >= 3 {
			cancel() // simulate SIGINT mid-stream
			return nil, ctx.Err()
		}
		b := w.Batches[fed]
		fed++
		return b, nil
	})

	srv := NewServer(ServerConfig{Pipeline: cfg, Queue: QueueConfig{Capacity: 4}})
	if err := srv.Run(ctx, src); err != nil {
		t.Fatalf("graceful shutdown returned %v", err)
	}

	// Everything admitted before the cancel is durable: a fresh pipeline
	// resumes exactly there.
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seq() != 3 {
		t.Fatalf("recovered seq %d, want 3", p.Seq())
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestServerRestartBudget: persistent durable-stage failures (here a
// checkpoint directory that never works) consume the restart budget and
// surface ErrTooManyRestarts.
func TestServerRestartBudget(t *testing.T) {
	w := testWorkload(t, 6)
	cfg := pipelineConfig(t, w)
	cfg.CheckpointPath = filepath.Join(t.TempDir(), "missing-dir", "ckpt.tds")
	cfg.CheckpointEvery = 1 // every batch trips the broken checkpointer

	srv := NewServer(ServerConfig{
		Pipeline:    cfg,
		Queue:       QueueConfig{Capacity: 4},
		MaxRestarts: 2,
	})
	err := srv.Run(context.Background(), NewSliceSource(w.Batches))
	if !errors.Is(err, ErrTooManyRestarts) {
		t.Fatalf("want ErrTooManyRestarts, got %v", err)
	}
	if got := srv.Collector().Get(stats.CtrServeRestarts); got != 2 {
		t.Fatalf("restarts = %d, want 2", got)
	}
}

// TestServerPoisonsUndeliverableBatch: a WAL that always fails keeps
// every batch non-durable; the supervisor re-attempts then poisons each
// batch and the server still drains cleanly.
func TestServerPoisonsUndeliverableBatch(t *testing.T) {
	w := testWorkload(t, 3)
	cfg := pipelineConfig(t, w)
	in, err := fault.Parse("disk-full:0", 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg.WAL.FS = in.FS(wal.OSFS{})
	cfg.CheckpointPath = "" // keep the failure surface to the WAL

	srv := NewServer(ServerConfig{
		Pipeline:         cfg,
		Queue:            QueueConfig{Capacity: 4},
		MaxBatchFailures: 2,
	})
	err = srv.Run(context.Background(), NewSliceSource(w.Batches))
	if err != nil && !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("unexpected error class: %v", err)
	}
	if got := srv.Collector().Get(stats.CtrServePoisoned); got != uint64(len(w.Batches)) {
		t.Fatalf("poisoned %d, want %d", got, len(w.Batches))
	}
}

// fakeReplicator fails Replicate after `okFor` successes with the
// configured error — the serve-side stand-in for quorum loss/fencing.
type fakeReplicator struct {
	okFor int
	fail  error
	calls int
}

func (r *fakeReplicator) Replicate(seq uint64, batch []graph.Update) error {
	r.calls++
	if r.calls > r.okFor {
		return r.fail
	}
	return nil
}

func (r *fakeReplicator) Close() error { return nil }

// TestServerHaltsOnReplicationFailure: replicate-stage failures are
// fatal — the supervisor must NOT restart (a restart cannot restore
// quorum, and a fenced primary must stop acknowledging entirely).
func TestServerHaltsOnReplicationFailure(t *testing.T) {
	for _, tc := range []struct {
		name string
		fail error
	}{
		{"quorum lost", errors.New("replica: quorum gone")},
		{"fenced", fmt.Errorf("replica: stale term: %w", ErrFenced)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			w := testWorkload(t, 6)
			cfg := pipelineConfig(t, w)
			repl := &fakeReplicator{okFor: 2, fail: tc.fail}
			cfg.Replicator = repl

			srv := NewServer(ServerConfig{
				Pipeline:    cfg,
				Queue:       QueueConfig{Capacity: 4, MaxBatchUpdates: 1},
				MaxRestarts: 5,
			})
			err := srv.Run(context.Background(), NewSliceSource(w.Batches))
			var ie *IngestError
			if !errors.As(err, &ie) || ie.Stage != "replicate" {
				t.Fatalf("want fatal IngestError stage replicate, got %v", err)
			}
			if !ie.Durable() {
				t.Fatal("replicate-stage failures must be durable-class")
			}
			if tc.fail != nil && errors.Is(tc.fail, ErrFenced) && !errors.Is(err, ErrFenced) {
				t.Fatalf("fencing lost through the chain: %v", err)
			}
			if got := srv.Collector().Get(stats.CtrServeRestarts); got != 0 {
				t.Fatalf("supervisor restarted %d times on a replication failure", got)
			}
			// The pipeline stopped at the last replicated batch.
			if got := srv.Pipeline().Seq(); got != 3 {
				t.Fatalf("halted at seq %d, want 3", got)
			}
		})
	}
}
