package serve

import (
	"errors"
	"sync"
	"testing"

	"github.com/tdgraph/tdgraph/internal/graph"
)

func mkBatch(n int, base uint32) []graph.Update {
	b := make([]graph.Update, n)
	for i := range b {
		b[i] = graph.Update{Edge: graph.Edge{Src: base + uint32(i), Dst: base + uint32(i) + 1, Weight: 1}}
	}
	return b
}

func TestQueueFIFO(t *testing.T) {
	q := NewQueue(QueueConfig{Capacity: 4})
	for i := 0; i < 3; i++ {
		if err := q.Put(mkBatch(2, uint32(i*10))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		b, err := q.Get()
		if err != nil {
			t.Fatal(err)
		}
		if b[0].Edge.Src != uint32(i*10) {
			t.Fatalf("batch %d out of order: src %d", i, b[0].Edge.Src)
		}
	}
}

// TestQueueCoalesce: a full queue first grows batch granularity — the
// two oldest batches merge, freeing the slot — before any policy runs.
func TestQueueCoalesce(t *testing.T) {
	q := NewQueue(QueueConfig{Capacity: 2, Policy: AdmitShed})
	if err := q.Put(mkBatch(2, 0)); err != nil {
		t.Fatal(err)
	}
	if err := q.Put(mkBatch(3, 100)); err != nil {
		t.Fatal(err)
	}
	if err := q.Put(mkBatch(1, 200)); err != nil {
		t.Fatalf("put into coalescable queue failed: %v", err)
	}
	st := q.Stats()
	if st.Coalesced != 1 || st.Shed != 0 {
		t.Fatalf("stats %+v, want 1 coalesce and no shed", st)
	}
	merged, err := q.Get()
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 5 || merged[0].Edge.Src != 0 || merged[2].Edge.Src != 100 {
		t.Fatalf("merged batch wrong: len %d", len(merged))
	}
	fresh, _ := q.Get()
	if len(fresh) != 1 || fresh[0].Edge.Src != 200 {
		t.Fatal("fresh batch disturbed by coalescing")
	}
}

// TestQueueShed: once MaxBatchUpdates blocks merging, AdmitShed drops
// the incoming batch with ErrShed.
func TestQueueShed(t *testing.T) {
	q := NewQueue(QueueConfig{Capacity: 2, Policy: AdmitShed, MaxBatchUpdates: 4})
	q.Put(mkBatch(3, 0))
	q.Put(mkBatch(3, 100)) // 3+3 > 4: no merge possible
	err := q.Put(mkBatch(1, 200))
	if !errors.Is(err, ErrShed) {
		t.Fatalf("want ErrShed, got %v", err)
	}
	if st := q.Stats(); st.Shed != 1 || st.Admitted != 2 {
		t.Fatalf("stats %+v", st)
	}
}

// TestQueueBlocking: AdmitBlock parks the producer until the consumer
// frees a slot.
func TestQueueBlocking(t *testing.T) {
	q := NewQueue(QueueConfig{Capacity: 1, MaxBatchUpdates: 1}) // merges impossible (1+1 > 1)
	if err := q.Put(mkBatch(1, 0)); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- q.Put(mkBatch(1, 100)) }()
	select {
	case err := <-done:
		t.Fatalf("put did not block on a full queue (err %v)", err)
	default:
	}
	if _, err := q.Get(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("unblocked put failed: %v", err)
	}
}

// TestQueueCloseDrains: Close stops admission but queued batches stay
// drainable; Get reports ErrQueueClosed only once empty.
func TestQueueCloseDrains(t *testing.T) {
	q := NewQueue(QueueConfig{Capacity: 4})
	q.Put(mkBatch(1, 0))
	q.Put(mkBatch(1, 10))
	q.Close()
	if err := q.Put(mkBatch(1, 20)); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("put after close: %v", err)
	}
	for i := 0; i < 2; i++ {
		if _, err := q.Get(); err != nil {
			t.Fatalf("drain batch %d: %v", i, err)
		}
	}
	if _, err := q.Get(); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("get after drain: %v", err)
	}
}

// TestQueueCloseWakesWaiters: a consumer parked on an empty queue and a
// producer parked on a full one both wake when Close is called.
func TestQueueCloseWakesWaiters(t *testing.T) {
	empty := NewQueue(QueueConfig{Capacity: 1})
	full := NewQueue(QueueConfig{Capacity: 1, MaxBatchUpdates: 1})
	full.Put(mkBatch(1, 0))
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if _, err := empty.Get(); !errors.Is(err, ErrQueueClosed) {
			t.Errorf("parked Get woke with %v", err)
		}
	}()
	go func() {
		defer wg.Done()
		if err := full.Put(mkBatch(1, 10)); !errors.Is(err, ErrQueueClosed) {
			t.Errorf("parked Put woke with %v", err)
		}
	}()
	empty.Close()
	full.Close()
	wg.Wait()
}
