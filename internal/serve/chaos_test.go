package serve

import (
	"math/rand"
	"path/filepath"
	"testing"

	tdgraph "github.com/tdgraph/tdgraph"
	"github.com/tdgraph/tdgraph/internal/fault"
	"github.com/tdgraph/tdgraph/internal/wal"
)

// TestChaosKillRecover is the durability acceptance test: a pipeline
// running with fsync-per-batch is killed at a seeded random byte offset
// in its WAL write stream (CrashFS panics mid-write, exactly like
// kill -9), the simulated page cache then loses a random amount of the
// unsynced tail, and recovery must
//
//  1. lose nothing past the last fsync barrier — every batch whose
//     Ingest returned before the kill is still there, and
//  2. after re-feeding the not-yet-durable batches, land on final
//     vertex states byte-identical to a run that was never killed.
//
// Every trial is deterministic from its seed; the whole test is
// single-goroutine per pipeline and race-clean.
func TestChaosKillRecover(t *testing.T) {
	w := testWorkload(t, 8)
	want := referenceStates(t, w)

	// Upper bound on the run's total WAL byte stream, so armed crash
	// offsets cover everything from the first header to past the end
	// (offsets beyond the end mean "no crash fires" — also a trial).
	totalBytes := int64(16) // segment header
	for _, b := range w.Batches {
		totalBytes += int64(16 + 13*len(b))
	}

	for trial := 0; trial < 10; trial++ {
		t.Run("", func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + trial)))
			armAt := rng.Int63n(totalBytes + totalBytes/4)

			walDir := t.TempDir()
			ckptPath := filepath.Join(t.TempDir(), "ckpt.tds")
			cfs := fault.NewCrashFS()
			crashCfg := PipelineConfig{
				Bootstrap:       bootstrapFrom(w),
				Algorithm:       tdgraph.NewSSSP(0),
				WAL:             wal.Options{Dir: walDir, Sync: wal.SyncEachBatch, FS: cfs},
				CheckpointPath:  ckptPath,
				CheckpointEvery: 3,
			}

			p, err := NewPipeline(crashCfg)
			if err != nil {
				t.Fatal(err)
			}
			cfs.ArmCrash(armAt)

			// Feed until the kill (or the end). fed counts batches whose
			// Ingest RETURNED — with fsync-per-batch each one is durable.
			fed := 0
			func() {
				defer func() {
					if r := recover(); r != nil {
						if _, ok := r.(fault.CrashSignal); !ok {
							panic(r)
						}
					}
				}()
				for _, b := range w.Batches {
					if err := p.Ingest(b); err != nil {
						t.Errorf("ingest before crash failed: %v", err)
						return
					}
					fed++
				}
			}()
			if t.Failed() {
				return
			}

			if cfs.Crashed() {
				// The process is "dead": the page cache loses a random
				// prefix of everything unsynced. No Close runs.
				if err := cfs.LoseUnsynced(rng); err != nil {
					t.Fatal(err)
				}
			} else {
				if err := p.Close(); err != nil {
					t.Fatal(err)
				}
			}

			// Reboot on the real filesystem over what survived.
			recoverCfg := crashCfg
			recoverCfg.WAL.FS = wal.OSFS{}
			p2, err := NewPipeline(recoverCfg)
			if err != nil {
				t.Fatalf("recovery failed (crashed=%v, fed=%d): %v", cfs.Crashed(), fed, err)
			}

			// Guarantee 1: nothing durable is lost, and nothing the
			// source never finished sending is invented.
			seq := p2.Seq()
			if seq < uint64(fed) {
				t.Fatalf("durable batch lost: recovered seq %d < %d acked", seq, fed)
			}
			if seq > uint64(fed)+1 {
				t.Fatalf("recovered seq %d past the batch being written (%d acked)", seq, fed)
			}

			// Guarantee 2: re-feed what was not yet durable; states must
			// be byte-identical to the uninterrupted run.
			for i := int(seq); i < len(w.Batches); i++ {
				if err := p2.Ingest(w.Batches[i]); err != nil {
					t.Fatalf("re-feed batch %d: %v", i, err)
				}
			}
			if err := p2.Close(); err != nil {
				t.Fatal(err)
			}
			if !statesEqual(p2.Session().States(), want) {
				t.Fatalf("crash at byte %d (fed %d, recovered seq %d): states diverged", armAt, fed, seq)
			}
		})
	}
}

// TestChaosTornBatchNeverReplayed pins the other side of the barrier: a
// batch whose WAL append tore mid-record (crash before the fsync) must
// NOT be visible after recovery — half a batch replayed would corrupt
// the graph.
func TestChaosTornBatchNeverReplayed(t *testing.T) {
	w := testWorkload(t, 4)
	walDir := t.TempDir()
	cfs := fault.NewCrashFS()
	cfg := PipelineConfig{
		Bootstrap: bootstrapFrom(w),
		Algorithm: tdgraph.NewSSSP(0),
		WAL:       wal.Options{Dir: walDir, Sync: wal.SyncEachBatch, FS: cfs},
	}
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range w.Batches[:2] {
		if err := p.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	// Crash a few bytes into batch 3's record: it is torn, never synced.
	cfs.ArmCrash(5)
	func() {
		defer func() { recover() }()
		_ = p.Ingest(w.Batches[2])
	}()
	if !cfs.Crashed() {
		t.Fatal("crash never fired")
	}
	if err := cfs.LoseUnsynced(rand.New(rand.NewSource(99))); err != nil {
		t.Fatal(err)
	}

	cfg2 := cfg
	cfg2.WAL.FS = wal.OSFS{}
	p2, err := NewPipeline(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Seq() != 2 {
		t.Fatalf("recovered seq %d, want exactly the 2 synced batches", p2.Seq())
	}
	if err := p2.Close(); err != nil {
		t.Fatal(err)
	}
}
