package serve

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/tdgraph/tdgraph/internal/graph"
	"github.com/tdgraph/tdgraph/internal/stats"
	"github.com/tdgraph/tdgraph/internal/wal"
)

// TestInstallSnapshotSwapsState: installing a shipped checkpoint
// replaces the pipeline's entire durable identity — engine states,
// sequence, checkpoint generation, and a reset WAL — and the new
// identity both extends live and survives a restart.
func TestInstallSnapshotSwapsState(t *testing.T) {
	w := testWorkload(t, 12)
	want := referenceStates(t, w)

	// Source: six batches in, newest generation covers seq 6.
	src, err := NewPipeline(pipelineConfig(t, w))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range w.Batches[:6] {
		if err := src.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	srcStates := append([]float64(nil), src.Session().States()...)
	seq, meta, data, err := src.SnapshotSource().NewestSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if seq != 6 {
		t.Fatalf("newest snapshot covers seq %d, want 6", seq)
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}

	// Target: a different two-batch life that is about to be replaced.
	cfg := pipelineConfig(t, w)
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range w.Batches[:2] {
		if err := p.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	tmp := filepath.Join(t.TempDir(), "shipped.tds")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := p.InstallSnapshot(tmp, meta)
	if err != nil {
		t.Fatalf("InstallSnapshot: %v", err)
	}
	if got != 6 || p.Seq() != 6 {
		t.Fatalf("installed seq %d (pipeline at %d), want 6", got, p.Seq())
	}
	if !statesEqual(p.Session().States(), srcStates) {
		t.Fatal("installed states differ from the shipped checkpoint's")
	}
	// The old WAL is gone: records 1..2 of the replaced life must not
	// shadow the installed state on a future replay.
	if start, err := wal.StartSeq(cfg.WAL); err != nil || start != 0 {
		t.Fatalf("WAL not reset after install: start %d err %v", start, err)
	}

	// The installed identity extends: the live tail lands on reference.
	for _, b := range w.Batches[6:] {
		if err := p.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	if !statesEqual(p.Session().States(), want) {
		t.Fatal("post-install ingestion diverged from reference")
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// And it survives a restart: checkpoint + WAL tail recover it.
	p2, err := NewPipeline(cfg)
	if err != nil {
		t.Fatalf("reopen after install: %v", err)
	}
	defer p2.Close()
	if p2.Seq() != 12 || !statesEqual(p2.Session().States(), want) {
		t.Fatalf("restart recovered seq %d, want 12 with reference states", p2.Seq())
	}
}

// TestInstallSnapshotRejectsBadInputs: every refused install leaves
// the pipeline exactly as it was — same sequence, same states, still
// ingesting.
func TestInstallSnapshotRejectsBadInputs(t *testing.T) {
	w := testWorkload(t, 4)

	t.Run("no checkpoint path", func(t *testing.T) {
		cfg := pipelineConfig(t, w)
		cfg.CheckpointPath = ""
		p, err := NewPipeline(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		if p.CanInstallSnapshot() {
			t.Fatal("pipeline without a checkpoint path claims it can install")
		}
		if _, err := p.InstallSnapshot("nowhere.tds", encodeSeqMeta(1)); err == nil {
			t.Fatal("install without a checkpoint path succeeded")
		}
	})

	// One source snapshot for the corrupt-input cases.
	src, err := NewPipeline(pipelineConfig(t, w))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range w.Batches[:3] {
		if err := src.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	_, meta, data, err := src.SnapshotSource().NewestSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		data []byte
		meta []byte
	}{
		{"unparseable checkpoint bytes", []byte("junk, not a TDS2 checkpoint"), meta},
		{"truncated metadata sidecar", data, meta[:5]},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := NewPipeline(pipelineConfig(t, w))
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			for _, b := range w.Batches[:2] {
				if err := p.Ingest(b); err != nil {
					t.Fatal(err)
				}
			}
			before := append([]float64(nil), p.Session().States()...)
			tmp := filepath.Join(t.TempDir(), "bad.tds")
			if err := os.WriteFile(tmp, tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := p.InstallSnapshot(tmp, tc.meta); err == nil {
				t.Fatal("corrupt install succeeded")
			}
			if p.Seq() != 2 || !statesEqual(p.Session().States(), before) {
				t.Fatalf("refused install disturbed the pipeline (seq %d)", p.Seq())
			}
			if err := p.Ingest(w.Batches[2]); err != nil {
				t.Fatalf("pipeline cannot ingest after a refused install: %v", err)
			}
		})
	}
}

// stubAdvisor is a Replicator that also advises retention: the serve
// layer must reach RetainFloor through the interface seam alone.
type stubAdvisor struct {
	floor uint64
	ok    bool
}

func (s *stubAdvisor) Replicate(uint64, []graph.Update) error { return nil }
func (s *stubAdvisor) Close() error                           { return nil }
func (s *stubAdvisor) RetainFloor() (uint64, bool)            { return s.floor, s.ok }

// TestRetainFloorBoundsRetention: a replication floor pins WAL
// segments that local generation retention would otherwise delete, and
// lifting the constraint releases them at the next checkpoint.
func TestRetainFloorBoundsRetention(t *testing.T) {
	w := testWorkload(t, 8)
	adv := &stubAdvisor{floor: 0, ok: true}
	cfg := pipelineConfig(t, w)
	cfg.WAL.SegmentBytes = 512
	cfg.CheckpointEvery = 2
	cfg.Replicator = adv
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for _, b := range w.Batches {
		if err := p.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	// Checkpoints advanced through seq 8, but the floor says nothing
	// may be truncated: every segment must still be on disk.
	if start, err := wal.StartSeq(cfg.WAL); err != nil || start != 1 {
		t.Fatalf("floor=0 still let retention advance: start %d err %v", start, err)
	}
	if n := p.Collector().Get(stats.CtrWALRetained); n != 0 {
		t.Fatalf("floor=0 but %d segments were removed", n)
	}

	// Constraint lifted (no live followers): the local generation rule
	// alone governs again, and the next checkpoint frees the backlog.
	adv.ok = false
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	start, err := wal.StartSeq(cfg.WAL)
	if err != nil {
		t.Fatal(err)
	}
	if start <= 1 {
		t.Fatalf("retention did not advance after the floor lifted (start %d)", start)
	}
	if n := p.Collector().Get(stats.CtrWALRetained); n == 0 {
		t.Fatal("no segments removed after the floor lifted")
	}
}
