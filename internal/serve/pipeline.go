package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	tdgraph "github.com/tdgraph/tdgraph"
	"github.com/tdgraph/tdgraph/internal/graph"
	"github.com/tdgraph/tdgraph/internal/stats"
	"github.com/tdgraph/tdgraph/internal/stream"
	"github.com/tdgraph/tdgraph/internal/wal"
)

// ErrRecoveryGap reports durable state that cannot be reconstructed:
// the oldest WAL record the log still retains starts after the
// sequence the restored checkpoint (or checkpointless bootstrap)
// covers, so the updates in between are unrecoverable. Serving would
// silently omit them; NewPipeline refuses instead.
var ErrRecoveryGap = errors.New("serve: recovery gap between restored state and WAL")

// ErrFenced reports that this pipeline's authority has been revoked: a
// follower with a newer term has been promoted, and anything this
// (former) primary acknowledges from now on could be silently lost.
// Replication errors wrap it so one errors.Is answers the only question
// the supervisor has — "may this process keep serving?" — with no.
var ErrFenced = errors.New("serve: primary fenced by a newer term")

// Replicator is the pipeline's quorum-acknowledgement hook: Replicate
// blocks until the batch (already durable locally) is durable on enough
// replicas to survive losing this machine, and returns an error when
// that can no longer be promised — quorum lost, or this primary fenced
// by a newer term (errors.Is(err, ErrFenced)). Implementations live in
// internal/replica; the interface lives here so serve never imports the
// transport.
type Replicator interface {
	// Replicate ships the batch at seq and waits for quorum.
	Replicate(seq uint64, batch []graph.Update) error
	// Close releases the replicator's connections.
	Close() error
}

// DeadlineReplicator is the deadline-aware extension of Replicator: a
// quorum hook that also implements it has ReplicateDeadline called for
// batches carrying a deadline, and must stop assembling acknowledgements
// once the deadline passes — returning nil if quorum was already met,
// or an error wrapping ErrDeadline if not. Reached by type assertion,
// like RetentionAdvisor, so serve never imports the transport.
type DeadlineReplicator interface {
	ReplicateDeadline(seq uint64, batch []graph.Update, deadline time.Time) error
}

// RetentionAdvisor lets the replication layer narrow WAL retention: a
// Replicator that also implements it reports the highest sequence
// retention may truncate through without orphaning replication —
// below every live follower's acknowledged position and any snapshot
// transfer still in flight. ok=false means replication imposes no
// constraint (no live followers) and the local generation rule alone
// decides, which is exactly the solo behavior. The advisor is reached
// by a type assertion on the Replicator so serve still never imports
// the transport.
type RetentionAdvisor interface {
	RetainFloor() (floor uint64, ok bool)
}

// PipelineConfig wires the durable core together.
type PipelineConfig struct {
	// Bootstrap builds the fresh session serving starts from when no
	// checkpoint generation is recoverable (first boot, or every
	// generation corrupt): the state at sequence zero.
	Bootstrap func() (*tdgraph.Session, error)
	// Algorithm restores checkpoints; it must match the one Bootstrap
	// configures (same parameters).
	Algorithm tdgraph.Algorithm
	// SessionOptions apply to restored sessions.
	SessionOptions tdgraph.SessionOptions
	// WAL configures the write-ahead log (Dir must exist).
	WAL wal.Options
	// CheckpointPath roots the rotating checkpoint generations; empty
	// disables checkpointing (the WAL alone carries recovery).
	CheckpointPath string
	// CheckpointKeep is the generations retained (default 2).
	CheckpointKeep int
	// CheckpointEvery checkpoints after every N ingested batches
	// (default 16; <0 disables periodic checkpoints).
	CheckpointEvery int
	// Collector receives the pipeline's counters (nil = private).
	Collector *stats.Collector
	// Replicator, when set, gates every Ingest on quorum durability:
	// the batch is applied (and acknowledged) only after Replicate
	// returns. Replication failures surface as stage "replicate", which
	// is fatal to the pipeline — a primary that cannot reach quorum or
	// has been fenced must stop acknowledging, not restart.
	Replicator Replicator
	// Clock is the time source deadline checks run on (default the real
	// clock; tests inject a fake).
	Clock Clock
	// DiskLowWater enables the disk-pressure ladder: when the WAL
	// volume's free space (via the FS's wal.FreeSpacer probe) drops
	// below it, the pipeline first advances WAL retention and then
	// refuses new ingest with ErrDiskPressure — read-only mode. 0 (the
	// default) disables the probe-driven gate; a hard ENOSPC from the
	// filesystem still degrades to read-only either way.
	DiskLowWater uint64
	// DiskHighWater is the resume threshold (default 2×DiskLowWater):
	// read-only mode exits once free space climbs back above it. The
	// gap is hysteresis — without it the pipeline would flap at the
	// boundary.
	DiskHighWater uint64
}

func (c PipelineConfig) withDefaults() PipelineConfig {
	if c.CheckpointKeep <= 0 {
		c.CheckpointKeep = 2
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 16
	}
	if c.Collector == nil {
		c.Collector = stats.NewCollector()
	}
	if c.Clock == nil {
		c.Clock = RealClock{}
	}
	if c.DiskHighWater == 0 {
		c.DiskHighWater = 2 * c.DiskLowWater
	}
	return c
}

// IngestError locates a pipeline failure by stage, so the supervisor
// knows whether the batch reached the log: "admit" failures refused
// the batch before any I/O (deadline already expired, or disk
// pressure) and "wal" failures happened before the record was written
// — in both the batch is nowhere and must be re-sent — while
// "wal-sync" failures happened after the record was written but
// before its fsync barrier completed — the bytes are in the log and
// may survive, so re-sending would double-apply; recovery (or a
// same-sequence retry) owns the batch instead. "apply" and
// "checkpoint" failures happen strictly after durability (recovery
// replays the batch from the log). errors.Is/As see through to the
// underlying cause.
type IngestError struct {
	Seq   uint64
	Stage string // "admit" | "wal" | "wal-sync" | "replicate" | "apply" | "checkpoint"
	Err   error
}

func (e *IngestError) Error() string {
	return fmt.Sprintf("serve: ingest seq %d: %s stage: %v", e.Seq, e.Stage, e.Err)
}

func (e *IngestError) Unwrap() error { return e.Err }

// Durable reports whether the failed batch's record reached the WAL
// file when the error struck — if so, replay can resurrect it and the
// source must NOT re-send it. Only "admit" (refused outright) and
// "wal" (pre-write) failures leave the batch safe to re-send;
// "wal-sync" failures wrote the record without completing its
// barrier, so they count as reached.
func (e *IngestError) Durable() bool { return e.Stage != "wal" && e.Stage != "admit" }

// Pipeline is the synchronous durable core of the serve loop: one
// goroutine feeds it admitted batches, and every batch is appended to
// the write-ahead log (fsynced per policy) before it touches the
// session. Checkpoints are cut every CheckpointEvery batches with the
// covered sequence stored in the generation's metadata sidecar, and
// WAL retention advances only past the OLDEST retained generation, so
// a fallback restore always finds its replay tail.
type Pipeline struct {
	cfg  PipelineConfig
	sess *tdgraph.Session
	log  *wal.Log
	ck   *tdgraph.Checkpointer
	// seq is the last ingested (or replayed) sequence. It is written
	// only by the single ingesting goroutine but read concurrently by
	// replication probe answers, hence atomic.
	seq  atomic.Uint64
	col  *stats.Collector
	repl Replicator

	sinceCkpt int

	// readOnly flags disk-pressure degradation: ingest is refused,
	// reads (and the replica layer's heartbeats) keep flowing. Written
	// by the ingesting goroutine, read by status probes, hence atomic.
	readOnly atomic.Bool
	// spaceCompacted remembers that retention was already advanced for
	// the current pressure episode — compacting again before new
	// checkpoints exist frees nothing.
	spaceCompacted bool
}

// NewPipeline recovers the durable state and returns a pipeline ready
// to ingest: newest checkpoint generation with valid metadata (or
// Bootstrap when none), torn-tail WAL repair, then replay of every
// logged batch past the checkpoint. Recovery is deterministic: the
// rebuilt session is byte-identical to one that processed the same
// durable prefix without crashing.
func NewPipeline(cfg PipelineConfig) (*Pipeline, error) {
	cfg = cfg.withDefaults()
	p := &Pipeline{cfg: cfg, col: cfg.Collector, repl: cfg.Replicator}

	// Rung 1: newest recoverable checkpoint generation, with the WAL
	// sequence it covers from its metadata sidecar.
	if cfg.CheckpointPath != "" {
		p.ck = &tdgraph.Checkpointer{Path: cfg.CheckpointPath, Keep: cfg.CheckpointKeep}
		sess, meta, skipped, err := p.ck.LoadWithMeta(cfg.Algorithm, cfg.SessionOptions)
		if err == nil {
			seq, derr := decodeSeqMeta(meta)
			if derr != nil {
				return nil, derr
			}
			p.sess = sess
			p.seq.Store(seq)
			for range skipped {
				p.col.Inc(stats.CtrCheckpointRecovered)
			}
		}
	}
	if p.sess == nil {
		sess, err := cfg.Bootstrap()
		if err != nil {
			return nil, fmt.Errorf("serve: bootstrap: %w", err)
		}
		p.sess = sess
		p.seq.Store(0)
	}

	// Rung 2: open the WAL, repairing any torn tail.
	l, rec, err := wal.Open(cfg.WAL)
	if err != nil {
		return nil, err
	}
	p.log = l
	if rec.Repaired() {
		p.col.Inc(stats.CtrWALTornRecovered)
	}

	// The restored state and the retained log must meet: if the oldest
	// surviving WAL record starts after the next sequence we need —
	// every checkpoint generation was unrecoverable but retention had
	// already truncated past them, say — the prefix is gone for good,
	// and serving would silently compute wrong state. Fail loudly.
	if first := l.FirstSeq(); first > p.seq.Load()+1 {
		return nil, fmt.Errorf("%w: restored state covers seq %d but the oldest retained WAL record is seq %d; updates %d..%d are unrecoverable",
			ErrRecoveryGap, p.seq.Load(), first, p.seq.Load()+1, first-1)
	}

	// Rung 3: replay every durable batch the checkpoint doesn't cover.
	err = l.Replay(p.seq.Load()+1, func(seq uint64, batch []graph.Update) error {
		p.applyLogged(seq, batch)
		p.col.Inc(stats.CtrWALReplayed)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if last := l.LastSeq(); last > p.seq.Load() {
		p.seq.Store(last)
	}
	return p, nil
}

// Session exposes the live session (read-only use: states, stats).
func (p *Pipeline) Session() *tdgraph.Session { return p.sess }

// Seq returns the last ingested sequence.
func (p *Pipeline) Seq() uint64 { return p.seq.Load() }

// Collector returns the pipeline's counter set.
func (p *Pipeline) Collector() *stats.Collector { return p.col }

// SetReplicator installs (or clears, with nil) the quorum hook after
// construction — the replica layer needs the recovered pipeline's
// sequence to build the replicator, so it cannot always be present in
// the config.
func (p *Pipeline) SetReplicator(r Replicator) { p.repl = r }

// WALOptions returns the log configuration the pipeline was built with
// (the replicator tails the same directory to catch followers up).
func (p *Pipeline) WALOptions() wal.Options { return p.cfg.WAL }

// applyLogged applies a batch that is already durable. Failures a
// deterministic replay would reproduce — validation rejections,
// recovered panics (the session self-heals) — are absorbed and
// counted, exactly as the live path absorbs them, so a recovered
// pipeline converges to the same states as an uninterrupted one.
func (p *Pipeline) applyLogged(seq uint64, batch []graph.Update) {
	_, err := p.sess.ApplyBatch(batch)
	if err == nil {
		return
	}
	var pe *tdgraph.PanicError
	var ve *stream.ValidationError
	switch {
	case errors.As(err, &pe):
		// Self-healed inside the session; the counters already track it.
	case errors.As(err, &ve):
		p.col.Inc(stats.CtrServeRejected)
	default:
		p.col.Inc(stats.CtrServeRejected)
	}
	_ = seq
}

// Ingest makes one batch durable and applies it: WAL append (fsync per
// policy), quorum replication when a Replicator is installed, session
// apply, periodic checkpoint. The returned error is always an
// *IngestError whose Stage says whether the batch got as far as the
// log. With a Replicator, a nil return means the batch is durable on a
// quorum of replicas, not just this disk.
func (p *Pipeline) Ingest(batch []graph.Update) error {
	return p.IngestDeadline(batch, time.Time{})
}

// IngestDeadline is Ingest with a per-batch deadline (zero = none): the
// batch is refused at admission when the deadline has already expired,
// and a deadline-aware Replicator stops waiting for stragglers once it
// passes mid-quorum. Both refusals surface as errors wrapping
// ErrDeadline with the stage they died in; an admission refusal is
// non-durable (nothing happened — re-send freely), a replicate-stage
// expiry is durable-class like any other quorum failure.
func (p *Pipeline) IngestDeadline(batch []graph.Update, deadline time.Time) error {
	seq := p.seq.Load() + 1
	if dpe := p.checkDiskPressure(); dpe != nil {
		p.col.Inc(stats.CtrServeDiskPressure)
		return &IngestError{Seq: seq, Stage: "admit", Err: dpe}
	}
	if !deadline.IsZero() && !p.cfg.Clock.Now().Before(deadline) {
		p.col.Inc(stats.CtrServeDeadlineExpired)
		return &IngestError{Seq: seq, Stage: "admit", Err: &DeadlineError{Stage: "admit"}}
	}
	if err := p.log.Append(seq, batch); err != nil {
		return p.walIngestError(seq, err)
	}
	p.appendSucceeded()
	p.seq.Store(seq)
	p.col.Inc(stats.CtrWALAppends)
	if p.repl != nil {
		var rerr error
		if dr, ok := p.repl.(DeadlineReplicator); ok && !deadline.IsZero() {
			rerr = dr.ReplicateDeadline(seq, batch, deadline)
		} else {
			rerr = p.repl.Replicate(seq, batch)
		}
		if rerr != nil {
			// Locally durable but not quorum-durable. The stage is
			// durable-class (replay may resurrect the batch) and fatal:
			// restarting would not restore quorum, and a fenced primary
			// (errors.Is(err, ErrFenced)) must never ack again.
			if errors.Is(rerr, ErrDeadline) {
				p.col.Inc(stats.CtrServeDeadlineExpired)
			}
			return &IngestError{Seq: seq, Stage: "replicate", Err: rerr}
		}
	}
	return p.applyIngested(seq, batch)
}

// ReadOnly reports whether the pipeline is refusing ingest under disk
// pressure. Reads, heartbeats and replication probes keep flowing.
func (p *Pipeline) ReadOnly() bool { return p.readOnly.Load() }

// checkDiskPressure is the admission rung of the degradation ladder.
// Below DiskLowWater it first advances WAL retention (compaction may
// free real space, once per episode), then enters read-only and
// returns a *DiskPressureError; once read-only, it holds until free
// space clears DiskHighWater. Disabled when no low-water mark or no
// free-space probe is configured.
func (p *Pipeline) checkDiskPressure() *DiskPressureError {
	low, high := p.cfg.DiskLowWater, p.cfg.DiskHighWater
	if low == 0 {
		return nil
	}
	free, ok := p.log.FreeSpace()
	if !ok {
		return nil
	}
	if p.readOnly.Load() {
		if free >= high {
			p.readOnly.Store(false)
			p.spaceCompacted = false
			p.col.Inc(stats.CtrServeReadonlyExits)
			return nil
		}
	} else if free >= low {
		p.spaceCompacted = false
		return nil
	} else {
		if !p.spaceCompacted {
			p.spaceCompacted = true
			_ = p.advanceRetention() // best effort: freeing needs no new writes
			if free, ok = p.log.FreeSpace(); ok && free >= low {
				return nil
			}
		}
		p.readOnly.Store(true)
		p.col.Inc(stats.CtrServeReadonlyEntries)
	}
	return &DiskPressureError{Op: "admit", Free: free, LowWater: low}
}

// walIngestError classifies an Append failure. ENOSPC is special: the
// record never persisted (the log repaired its tail), so instead of
// letting the supervisor burn retries and poison the batch, the
// pipeline advances retention once, enters read-only, and returns a
// retryable error wrapping ErrDiskPressure.
func (p *Pipeline) walIngestError(seq uint64, err error) error {
	var nd *wal.NotDurableError
	if errors.As(err, &nd) {
		// The record is in the log file; only its fsync barrier (or
		// rotation) failed. Re-sending it as a new sequence would
		// double-apply it on replay, so the supervisor must restart
		// and recover instead.
		return &IngestError{Seq: seq, Stage: "wal-sync", Err: err}
	}
	if wal.IsNoSpace(err) {
		if !p.spaceCompacted {
			p.spaceCompacted = true
			_ = p.advanceRetention()
		}
		if !p.readOnly.Load() {
			p.readOnly.Store(true)
			p.col.Inc(stats.CtrServeReadonlyEntries)
		}
		p.col.Inc(stats.CtrServeDiskPressure)
		free, _ := p.log.FreeSpace()
		return &IngestError{Seq: seq, Stage: "admit",
			Err: fmt.Errorf("%w: %w", &DiskPressureError{Op: "append", Free: free, LowWater: p.cfg.DiskLowWater}, err)}
	}
	return &IngestError{Seq: seq, Stage: "wal", Err: err}
}

// appendSucceeded clears ENOSPC-driven read-only mode: with no probe
// configured, a write that fits again IS the free-space signal.
func (p *Pipeline) appendSucceeded() {
	p.spaceCompacted = false
	if p.cfg.DiskLowWater == 0 && p.readOnly.Load() {
		p.readOnly.Store(false)
		p.col.Inc(stats.CtrServeReadonlyExits)
	}
}

// IngestReplicated is the follower-side twin of Ingest: it applies a
// batch the primary shipped at an explicit sequence, enforcing
// contiguity with what this replica has already applied. The caller
// (the replication session) acks only after a nil return, so an ack
// always means "durable here and applied through the same code path
// recovery replays".
func (p *Pipeline) IngestReplicated(seq uint64, batch []graph.Update) error {
	if seq != p.seq.Load()+1 {
		return &IngestError{Seq: seq, Stage: "wal",
			Err: fmt.Errorf("replicated batch seq %d does not follow local seq %d", seq, p.seq.Load())}
	}
	if err := p.log.Append(seq, batch); err != nil {
		return p.walIngestError(seq, err)
	}
	p.appendSucceeded()
	p.seq.Store(seq)
	p.col.Inc(stats.CtrWALAppends)
	return p.applyIngested(seq, batch)
}

// applyIngested is the shared post-durability half of Ingest and
// IngestReplicated: apply, count, periodic checkpoint.
func (p *Pipeline) applyIngested(seq uint64, batch []graph.Update) error {
	p.applyLogged(seq, batch)
	p.col.Inc(stats.CtrServeIngested)

	if p.ck != nil && p.cfg.CheckpointEvery > 0 {
		p.sinceCkpt++
		if p.sinceCkpt >= p.cfg.CheckpointEvery {
			if err := p.Checkpoint(); err != nil {
				if wal.IsNoSpace(err) {
					// Degrade, never poison: the batch is durable in the WAL
					// and applied, only the checkpoint generation could not
					// be cut. Keep serving on the log alone — sinceCkpt stays
					// at the threshold so every batch retries, and sustained
					// pressure turns into read-only at the admission gate.
					return nil
				}
				return &IngestError{Seq: seq, Stage: "checkpoint", Err: err}
			}
		}
	}
	return nil
}

// Checkpoint cuts a generation now: WAL barrier, rotate + save with
// the covered sequence in the metadata sidecar, then advance WAL
// retention past the oldest retained generation.
func (p *Pipeline) Checkpoint() error {
	if p.ck == nil {
		return nil
	}
	// The checkpoint must never cover more than the log can replay:
	// fsync first so every covered batch is durable.
	if err := p.log.Sync(); err != nil {
		return err
	}
	if err := p.ck.SaveWithMeta(p.sess, encodeSeqMeta(p.seq.Load())); err != nil {
		return err
	}
	p.sinceCkpt = 0
	p.col.Inc(stats.CtrServeCheckpoints)
	return p.advanceRetention()
}

// advanceRetention truncates WAL segments nothing can still need: the
// oldest retained checkpoint generation pins the replay tail, and
// replication (when present) pins it further — no live follower's
// catch-up, and no snapshot transfer in flight, may be truncated out
// from under it. A follower that nonetheless rejoins from below the
// floor is reseeded from a checkpoint, not served from the log, which
// is what lets retention advance past shipped checkpoints at all
// instead of pinning the log to the slowest replica forever. The
// disk-pressure ladder calls this directly ("compact harder") because
// it frees space without writing anything new.
func (p *Pipeline) advanceRetention() error {
	if p.ck == nil {
		return nil
	}
	oldest := p.seq.Load()
	for _, m := range p.ck.Metas() {
		if m == nil {
			continue
		}
		if seq, err := decodeSeqMeta(m); err == nil && seq < oldest {
			oldest = seq
		}
	}
	if ra, ok := p.repl.(RetentionAdvisor); ok {
		if floor, bound := ra.RetainFloor(); bound && floor < oldest {
			oldest = floor
		}
	}
	if err := p.log.TruncateThrough(oldest); err != nil {
		return err
	}
	p.syncWALStats()
	return nil
}

// CanInstallSnapshot reports whether this pipeline can adopt a shipped
// snapshot: it needs a checkpoint path to install the file into, or
// the installed state would not survive its next restart.
func (p *Pipeline) CanInstallSnapshot() bool { return p.ck != nil }

// InstallSnapshot replaces the pipeline's entire durable state with a
// shipped checkpoint: the engine-portable TDS2 file at tmpPath plus
// its metadata payload (the WAL sequence it covers). The order keeps
// every crash point recoverable. The new session is loaded first —
// validating the file end to end while the old state is still
// authoritative, so a corrupt snapshot changes nothing. Then the WAL
// is reset: its records either precede the snapshot (superseded) or
// extend a history the primary refused, and wiping them *before* the
// checkpoint becomes visible means no crash point can replay old
// records on top of new state. Only after the checkpoint file and its
// sidecar are durably installed is the in-memory session swapped; a
// crash between reset and install recovers to an older (or bootstrap)
// state that simply reseeds again.
func (p *Pipeline) InstallSnapshot(tmpPath string, meta []byte) (uint64, error) {
	if p.ck == nil {
		return 0, fmt.Errorf("serve: snapshot install needs a checkpoint path")
	}
	seq, err := decodeSeqMeta(meta)
	if err != nil {
		return 0, err
	}
	sess, err := tdgraph.LoadSessionFile(p.cfg.Algorithm, tmpPath, p.cfg.SessionOptions)
	if err != nil {
		return 0, err
	}
	if err := p.log.Reset(); err != nil {
		sess.Close()
		return 0, err
	}
	if err := p.ck.Install(tmpPath, meta); err != nil {
		sess.Close()
		return 0, err
	}
	p.sess.Close() // quiesce: park the replaced engine's worker pool
	p.sess = sess
	p.seq.Store(seq)
	p.sinceCkpt = 0
	p.syncWALStats()
	return seq, nil
}

// Close drains the pipeline durably: final WAL barrier, final
// checkpoint generation, close the log. The final checkpoint makes the
// next boot instant (nothing to replay) but its absence is safe — the
// log alone recovers everything.
func (p *Pipeline) Close() error {
	var firstErr error
	if err := p.log.Sync(); err != nil {
		firstErr = err
	}
	if p.ck != nil && firstErr == nil {
		if err := p.Checkpoint(); err != nil {
			firstErr = err
		}
	}
	if err := p.log.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	p.sess.Close() // park the native engine's worker pool, if any
	p.syncWALStats()
	return firstErr
}

func (p *Pipeline) syncWALStats() {
	ls := p.log.Stats()
	p.col.Set(stats.CtrWALFsyncs, ls.Fsyncs)
	p.col.Set(stats.CtrWALRotations, ls.Rotations)
	p.col.Set(stats.CtrWALRetained, ls.Removed)
}

// encodeSeqMeta / decodeSeqMeta frame the one fact a checkpoint needs
// alongside its states: the WAL sequence it covers.
func encodeSeqMeta(seq uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], seq)
	return b[:]
}

func decodeSeqMeta(meta []byte) (uint64, error) {
	if len(meta) != 8 {
		return 0, fmt.Errorf("serve: checkpoint meta is %d bytes, want 8", len(meta))
	}
	return binary.LittleEndian.Uint64(meta), nil
}
