package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"syscall"
	"testing"
	"time"

	"github.com/tdgraph/tdgraph/internal/fault"
	"github.com/tdgraph/tdgraph/internal/graph"
	"github.com/tdgraph/tdgraph/internal/stats"
	"github.com/tdgraph/tdgraph/internal/wal"
)

// shedController returns a controller already escalated to the given
// pressure level, by feeding it enough over-target observations.
func shedController(t *testing.T, level PressureLevel) *SLOController {
	t.Helper()
	c := NewSLOController(SLOConfig{Target: 10 * time.Millisecond})
	for i := 0; i < 64 && c.Level() < level; i++ {
		c.Observe(100*time.Millisecond, 0, 0)
	}
	if c.Level() != level {
		t.Fatalf("could not drive controller to level %v (at %v)", level, c.Level())
	}
	return c
}

// TestSLOControllerEscalatesAndRelaxes: sustained over-target latency
// climbs the ladder one rung per streak; sustained healthy latency
// climbs back down, more slowly.
func TestSLOControllerEscalatesAndRelaxes(t *testing.T) {
	c := NewSLOController(SLOConfig{Target: 10 * time.Millisecond, EscalateAfter: 4, RelaxAfter: 8})
	if c.Level() != PressureNone {
		t.Fatalf("fresh controller at %v", c.Level())
	}
	// Three hot observations are not a streak yet.
	for i := 0; i < 3; i++ {
		c.Observe(50*time.Millisecond, 0, 0)
	}
	if c.Level() != PressureNone {
		t.Fatalf("escalated after only 3 hot observations: %v", c.Level())
	}
	c.Observe(50*time.Millisecond, 0, 0)
	if c.Level() != PressureCoalesce {
		t.Fatalf("4th hot observation: level %v, want coalesce", c.Level())
	}
	for i := 0; i < 4; i++ {
		c.Observe(50*time.Millisecond, 0, 0)
	}
	if c.Level() != PressureShed {
		t.Fatalf("8th hot observation: level %v, want shed", c.Level())
	}
	if ra := c.RetryAfter(); ra < c.Target()/4 || ra > 4*c.Target() {
		t.Fatalf("retry-after %v outside [target/4, 4*target]", ra)
	}

	// Healthy again: the EWMA has to decay below target/2, then two
	// relax streaks bring it back to none. Bounded loop, deterministic.
	for i := 0; i < 256 && c.Level() != PressureNone; i++ {
		c.Observe(time.Millisecond, 0, 0)
	}
	if c.Level() != PressureNone {
		t.Fatalf("controller never relaxed: %v", c.Level())
	}
	if ra := c.RetryAfter(); ra != 0 {
		t.Fatalf("retry-after %v below shed, want 0", ra)
	}
}

// TestSLOControllerQueueDepthEscalates: a near-full queue is a hot
// signal even when latency looks fine.
func TestSLOControllerQueueDepthEscalates(t *testing.T) {
	c := NewSLOController(SLOConfig{Target: 10 * time.Millisecond, EscalateAfter: 2})
	for i := 0; i < 2; i++ {
		c.Observe(time.Millisecond, 15, 16) // depth at 94% of capacity
	}
	if c.Level() != PressureCoalesce {
		t.Fatalf("deep queue did not escalate: %v", c.Level())
	}
}

// TestSLOControllerNilSafe: a nil controller (SLO disabled) is inert.
func TestSLOControllerNilSafe(t *testing.T) {
	var c *SLOController
	if got := NewSLOController(SLOConfig{}); got != nil {
		t.Fatalf("zero target built a controller: %+v", got)
	}
	c.Observe(time.Second, 10, 10) // must not panic
	if c.Level() != PressureNone || c.RetryAfter() != 0 || c.Target() != 0 {
		t.Fatal("nil controller is not inert")
	}
}

// TestQueueSLOShedsWithBacklog: at PressureShed the queue refuses new
// work while a backlog exists — but an empty queue still admits, so a
// lone trickle of traffic is never starved outright.
func TestQueueSLOShedsWithBacklog(t *testing.T) {
	q := NewQueue(QueueConfig{Capacity: 8, SLO: shedController(t, PressureShed)})
	if err := q.Put(mkBatch(2, 0)); err != nil {
		t.Fatalf("empty queue refused under shed posture: %v", err)
	}
	err := q.Put(mkBatch(2, 10))
	if !errors.Is(err, ErrShed) {
		t.Fatalf("backlogged queue admitted under shed posture: %v", err)
	}
	st := q.Stats()
	if st.Shed != 1 || st.ShedSLO != 1 {
		t.Fatalf("stats %+v, want shed=1 shed_slo=1", st)
	}
}

// TestQueueSLOCoalescesEarly: at PressureCoalesce the queue merges at
// half capacity instead of waiting until it is full.
func TestQueueSLOCoalescesEarly(t *testing.T) {
	q := NewQueue(QueueConfig{Capacity: 4, SLO: shedController(t, PressureCoalesce)})
	q.Put(mkBatch(2, 0))
	q.Put(mkBatch(2, 100)) // depth 2 of 4: the coalescing posture trips
	if err := q.Put(mkBatch(2, 200)); err != nil {
		t.Fatal(err)
	}
	st := q.Stats()
	if st.Coalesced != 1 || st.CoalescedSLO != 1 {
		t.Fatalf("stats %+v, want one SLO-forced coalesce", st)
	}
	if q.Len() != 2 {
		t.Fatalf("depth %d after SLO coalesce, want 2", q.Len())
	}
}

// TestQueueByteBoundOversizedAdmittedAlone: a batch bigger than
// MaxBytes passes through an empty queue alone instead of wedging
// forever; with a backlog the byte bound applies normally.
func TestQueueByteBoundOversizedAdmittedAlone(t *testing.T) {
	q := NewQueue(QueueConfig{Capacity: 8, Policy: AdmitShed, MaxBytes: 100})
	big := mkBatch(20, 0) // 20 updates = 260 wire bytes > 100
	if err := q.Put(big); err != nil {
		t.Fatalf("oversized batch wedged an empty queue: %v", err)
	}
	if got := q.Bytes(); got != batchBytes(big) {
		t.Fatalf("bytes %d, want %d", got, batchBytes(big))
	}
	// With the oversized batch queued, even a tiny batch breaches.
	if err := q.Put(mkBatch(1, 100)); !errors.Is(err, ErrShed) {
		t.Fatalf("byte-full queue admitted: %v", err)
	}
	if _, err := q.Get(); err != nil {
		t.Fatal(err)
	}
	if q.Bytes() != 0 {
		t.Fatalf("bytes %d after drain, want 0", q.Bytes())
	}
	if err := q.Put(mkBatch(1, 100)); err != nil {
		t.Fatalf("drained queue refused: %v", err)
	}
}

// TestQueueByteBoundShedsWhenMergeCannotHelp: merging concatenates,
// so it frees slots but never bytes — a byte-bound breach collapses
// the backlog and then sheds the newcomer, and admission recovers as
// soon as the consumer drains bytes.
func TestQueueByteBoundShedsWhenMergeCannotHelp(t *testing.T) {
	q := NewQueue(QueueConfig{Capacity: 100, Policy: AdmitShed, MaxBytes: 5 * updateWireBytes})
	q.Put(mkBatch(2, 0))
	q.Put(mkBatch(2, 100))
	// 52 bytes queued; 13 more lands exactly on the 65-byte bound.
	if err := q.Put(mkBatch(1, 200)); err != nil {
		t.Fatalf("batch landing on the bound refused: %v", err)
	}
	if st := q.Stats(); st.Coalesced != 0 {
		t.Fatalf("merged when the newcomer fit: %+v", st)
	}
	// The next byte would breach. Granularity growth collapses the
	// backlog slot by slot, but bytes stand — the batch sheds.
	if err := q.Put(mkBatch(1, 300)); !errors.Is(err, ErrShed) {
		t.Fatalf("byte-full queue admitted: %v", err)
	}
	if st := q.Stats(); st.Shed != 1 || st.Coalesced == 0 {
		t.Fatalf("stats %+v, want a shed preceded by merges", st)
	}
	// Draining the (merged) backlog frees bytes; admission recovers.
	b, err := q.Get()
	if err != nil || len(b) != 5 {
		t.Fatalf("merged backlog len %d err %v, want all 5 updates", len(b), err)
	}
	if err := q.Put(mkBatch(1, 400)); err != nil {
		t.Fatalf("drained queue refused: %v", err)
	}
}

// TestQueueByteBoundRespectsMaxBatchUpdates: when the byte bound would
// allow a merge but MaxBatchUpdates forbids it, the merge must not
// happen — granularity growth never builds a batch past the cap.
func TestQueueByteBoundRespectsMaxBatchUpdates(t *testing.T) {
	q := NewQueue(QueueConfig{
		Capacity: 2, Policy: AdmitShed,
		MaxBatchUpdates: 4,     // 3+3 > 4: merging forbidden
		MaxBytes:        10000, // bytes would happily allow it
	})
	q.Put(mkBatch(3, 0))
	q.Put(mkBatch(3, 100))
	if err := q.Put(mkBatch(1, 200)); !errors.Is(err, ErrShed) {
		t.Fatalf("merge exceeded MaxBatchUpdates: %v", err)
	}
	b, err := q.Get()
	if err != nil || len(b) != 3 {
		t.Fatalf("oldest batch mutated: len %d err %v", len(b), err)
	}
}

// hintedErr is a fake server backpressure error carrying a retry-after
// hint, as BusyError does in the replica layer.
type hintedErr struct{ after time.Duration }

func (e *hintedErr) Error() string                 { return "backpressure" }
func (e *hintedErr) RetryAfterHint() time.Duration { return e.after }

// TestRetrySourceHonorsRetryAfterHint: a failure carrying a
// retry-after hint floors the backoff delay at it.
func TestRetrySourceHonorsRetryAfterHint(t *testing.T) {
	clock := newFakeClock()
	busy := &hintedErr{after: 2 * time.Second}
	calls := 0
	src := FuncSource(func(ctx context.Context) ([]graph.Update, error) {
		calls++
		if calls == 1 {
			return nil, fmt.Errorf("refused: %w", busy)
		}
		return mkBatch(1, 0), nil
	})
	backoff := NewBackoff(1)
	backoff.Jitter = 0 // Delay(0) = 50ms, far below the hint
	rs := NewRetrySource(src, backoff, nil, clock, 1)
	if _, err := rs.Next(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(clock.slept) != 1 || clock.slept[0] != 2*time.Second {
		t.Fatalf("slept %v, want exactly the 2s retry-after floor", clock.slept)
	}
	if rs.Retries() != 1 {
		t.Fatalf("retries %d, want 1", rs.Retries())
	}
}

// TestRetrySourceBackoffWinsOverSmallHint: when the scheduled backoff
// already exceeds the hint, the larger delay stands.
func TestRetrySourceBackoffWinsOverSmallHint(t *testing.T) {
	clock := newFakeClock()
	calls := 0
	src := FuncSource(func(ctx context.Context) ([]graph.Update, error) {
		calls++
		if calls == 1 {
			return nil, &hintedErr{after: time.Millisecond}
		}
		return mkBatch(1, 0), nil
	})
	backoff := NewBackoff(1)
	backoff.Jitter = 0
	rs := NewRetrySource(src, backoff, nil, clock, 1)
	if _, err := rs.Next(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(clock.slept) != 1 || clock.slept[0] != 50*time.Millisecond {
		t.Fatalf("slept %v, want the 50ms backoff", clock.slept)
	}
}

// TestRetrySourceNeverRetriesCancellation: context.Canceled — whether
// from the caller's context or bubbled through the source — is not a
// source failure: no retry, no breaker accounting. A shutdown must not
// trip the breaker open for the next session.
func TestRetrySourceNeverRetriesCancellation(t *testing.T) {
	clock := newFakeClock()
	br := NewBreaker(1, time.Second, clock) // one failure would open it
	calls := 0
	src := FuncSource(func(ctx context.Context) ([]graph.Update, error) {
		calls++
		return nil, fmt.Errorf("submit interrupted: %w", context.Canceled)
	})
	rs := NewRetrySource(src, nil, br, clock, 1)
	_, err := rs.Next(context.Background())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled through untouched", err)
	}
	if calls != 1 || rs.Retries() != 0 {
		t.Fatalf("calls=%d retries=%d, want a single attempt and no retries", calls, rs.Retries())
	}
	if br.State() != BreakerClosed || br.Opens() != 0 {
		t.Fatalf("cancellation tripped the breaker: %v opens=%d", br.State(), br.Opens())
	}

	// A caller-cancelled context short-circuits the same way.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	fail := FuncSource(func(ctx context.Context) ([]graph.Update, error) {
		return nil, errors.New("transport down")
	})
	rs2 := NewRetrySource(fail, nil, NewBreaker(1, time.Second, clock), clock, 1)
	if _, err := rs2.Next(ctx); err == nil {
		t.Fatal("cancelled context retried to success?")
	}
	if rs2.Retries() != 0 {
		t.Fatalf("cancelled context produced %d retries", rs2.Retries())
	}
}

// TestRetrySourceDeadlineFeedsBreaker: genuine timeouts (including
// context.DeadlineExceeded surfaced by a transport) ARE source
// failures — retried, counted, breaker-fed.
func TestRetrySourceDeadlineFeedsBreaker(t *testing.T) {
	clock := newFakeClock()
	br := NewBreaker(3, time.Second, clock)
	calls := 0
	src := FuncSource(func(ctx context.Context) ([]graph.Update, error) {
		calls++
		if calls == 1 {
			return nil, fmt.Errorf("ack wait: %w", context.DeadlineExceeded)
		}
		return nil, io.EOF
	})
	rs := NewRetrySource(src, nil, br, clock, 1)
	if _, err := rs.Next(context.Background()); !errors.Is(err, io.EOF) {
		t.Fatal(err)
	}
	if rs.Retries() != 1 {
		t.Fatalf("retries %d, want 1 (the timeout was retried)", rs.Retries())
	}
}

// deadlineRepl is a fake quorum hook recording which replication entry
// point the pipeline chose and the deadline it passed.
type deadlineRepl struct {
	plainCalls    int
	deadlineCalls int
	gotDeadline   time.Time
	fail          error
}

func (r *deadlineRepl) Replicate(seq uint64, batch []graph.Update) error {
	r.plainCalls++
	return r.fail
}

func (r *deadlineRepl) ReplicateDeadline(seq uint64, batch []graph.Update, deadline time.Time) error {
	r.deadlineCalls++
	r.gotDeadline = deadline
	return r.fail
}

func (r *deadlineRepl) Close() error { return nil }

// TestPipelineDeadlineAdmitExpiry: an already-expired deadline refuses
// the batch before any I/O — non-durable, typed, counted — and the
// same batch succeeds once given budget.
func TestPipelineDeadlineAdmitExpiry(t *testing.T) {
	w := testWorkload(t, 2)
	cfg := pipelineConfig(t, w)
	clk := newFakeClock()
	cfg.Clock = clk
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	err = p.IngestDeadline(w.Batches[0], clk.Now()) // expired on arrival
	var ie *IngestError
	if !errors.As(err, &ie) || ie.Stage != "admit" || ie.Durable() {
		t.Fatalf("want non-durable admit-stage error, got %v", err)
	}
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("lost ErrDeadline: %v", err)
	}
	var de *DeadlineError
	if !errors.As(err, &de) || de.Stage != "admit" {
		t.Fatalf("deadline stage %v, want admit", err)
	}
	if p.Seq() != 0 {
		t.Fatalf("expired batch advanced seq to %d", p.Seq())
	}
	if got := p.Collector().Get(stats.CtrServeDeadlineExpired); got != 1 {
		t.Fatalf("deadline counter %d, want 1", got)
	}

	// The identical batch with budget left goes straight through.
	if err := p.IngestDeadline(w.Batches[0], clk.Now().Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if p.Seq() != 1 {
		t.Fatalf("seq %d after successful ingest, want 1", p.Seq())
	}
}

// TestPipelineRoutesDeadlineToReplicator: a deadline-aware Replicator
// gets ReplicateDeadline (with the deadline) for deadline-carrying
// batches and plain Replicate otherwise.
func TestPipelineRoutesDeadlineToReplicator(t *testing.T) {
	w := testWorkload(t, 3)
	cfg := pipelineConfig(t, w)
	clk := newFakeClock()
	cfg.Clock = clk
	repl := &deadlineRepl{}
	cfg.Replicator = repl
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	if err := p.Ingest(w.Batches[0]); err != nil {
		t.Fatal(err)
	}
	deadline := clk.Now().Add(time.Minute)
	if err := p.IngestDeadline(w.Batches[1], deadline); err != nil {
		t.Fatal(err)
	}
	if repl.plainCalls != 1 || repl.deadlineCalls != 1 {
		t.Fatalf("plain=%d deadline=%d, want 1 and 1", repl.plainCalls, repl.deadlineCalls)
	}
	if !repl.gotDeadline.Equal(deadline) {
		t.Fatalf("replicator saw deadline %v, want %v", repl.gotDeadline, deadline)
	}

	// A replicate-stage expiry surfaces as a durable-class failure
	// wrapping ErrDeadline, and is counted.
	repl.fail = fmt.Errorf("2 of 3 acks: %w", NewDeadlineError("replicate"))
	err = p.IngestDeadline(w.Batches[2], clk.Now().Add(time.Minute))
	var ie *IngestError
	if !errors.As(err, &ie) || ie.Stage != "replicate" || !ie.Durable() {
		t.Fatalf("want durable replicate-stage error, got %v", err)
	}
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("lost ErrDeadline through the replicate stage: %v", err)
	}
	if got := p.Collector().Get(stats.CtrServeDeadlineExpired); got != 1 {
		t.Fatalf("deadline counter %d, want 1", got)
	}
}

// TestPipelineDiskPressureReadOnlyAndResume: the probe-driven ladder —
// free space sags below the low-water mark, the pipeline enters
// read-only with typed retryable refusals, space frees, ingestion
// resumes past the high-water mark with zero loss.
func TestPipelineDiskPressureReadOnlyAndResume(t *testing.T) {
	w := testWorkload(t, 6)
	want := referenceStates(t, w)
	cfg := pipelineConfig(t, w)
	cfg.CheckpointPath = "" // retention can free nothing: pressure must hold

	inj := fault.New(7)
	inj.Arm(fault.LowSpace, 1600) // probe-only volume: 1600 bytes capacity
	cfg.WAL.FS = inj.FS(wal.OSFS{})
	cfg.DiskLowWater = 600
	cfg.DiskHighWater = 1200

	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Ingest until the ladder trips (each record is ~290 bytes; the
	// 1600-byte volume cannot take them all).
	next := 0
	var derr error
	for ; next < len(w.Batches); next++ {
		if derr = p.Ingest(w.Batches[next]); derr != nil {
			break
		}
	}
	if derr == nil {
		t.Fatal("volume never filled; capacity vs workload mismatch")
	}
	var ie *IngestError
	if !errors.As(derr, &ie) || ie.Stage != "admit" || ie.Durable() {
		t.Fatalf("want non-durable admit refusal, got %v", derr)
	}
	if !errors.Is(derr, ErrDiskPressure) {
		t.Fatalf("lost ErrDiskPressure: %v", derr)
	}
	var dpe *DiskPressureError
	if !errors.As(derr, &dpe) || dpe.LowWater != 600 {
		t.Fatalf("disk-pressure detail wrong: %v", derr)
	}
	if !p.ReadOnly() {
		t.Fatal("pipeline not read-only after the refusal")
	}
	// Read-only holds below the high-water mark on every retry.
	if err := p.Ingest(w.Batches[next]); !errors.Is(err, ErrDiskPressure) {
		t.Fatalf("read-only pipeline admitted: %v", err)
	}
	col := p.Collector()
	if got := col.Get(stats.CtrServeReadonlyEntries); got != 1 {
		t.Fatalf("readonly entries %d, want 1", got)
	}
	if got := col.Get(stats.CtrServeDiskPressure); got < 2 {
		t.Fatalf("disk-pressure rejects %d, want >= 2", got)
	}

	// Free space (an operator clears the volume); ingest resumes and
	// the run converges on the reference states with nothing lost.
	spacer, ok := cfg.WAL.FS.(fault.DiskSpacer)
	if !ok {
		t.Fatal("fault FS lost the DiskSpacer seam")
	}
	spacer.AddDiskSpace(1 << 20)
	for ; next < len(w.Batches); next++ {
		if err := p.Ingest(w.Batches[next]); err != nil {
			t.Fatalf("batch %d after space freed: %v", next, err)
		}
	}
	if p.ReadOnly() {
		t.Fatal("pipeline still read-only after space freed")
	}
	if got := col.Get(stats.CtrServeReadonlyExits); got != 1 {
		t.Fatalf("readonly exits %d, want 1", got)
	}
	if p.Seq() != uint64(len(w.Batches)) {
		t.Fatalf("seq %d, want %d", p.Seq(), len(w.Batches))
	}
	if !statesEqual(p.Session().States(), want) {
		t.Fatal("degraded-and-resumed run diverged from reference")
	}
}

// TestPipelineENOSPCAppendDegradesNotPoisons: a hard ENOSPC mid-append
// persists nothing, degrades to read-only with a retryable typed
// error, and the SAME sequence succeeds after space frees — never
// poisoned, never double-applied.
func TestPipelineENOSPCAppendDegradesNotPoisons(t *testing.T) {
	w := testWorkload(t, 6)
	want := referenceStates(t, w)
	cfg := pipelineConfig(t, w)
	cfg.CheckpointPath = ""

	inj := fault.New(7)
	inj.Arm(fault.NoSpace, 900) // writes beyond 900 bytes fail ENOSPC
	cfg.WAL.FS = inj.FS(wal.OSFS{})

	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	next := 0
	var derr error
	for ; next < len(w.Batches); next++ {
		if derr = p.Ingest(w.Batches[next]); derr != nil {
			break
		}
	}
	if derr == nil {
		t.Fatal("capacity never exhausted")
	}
	seqBefore := p.Seq()
	var ie *IngestError
	if !errors.As(derr, &ie) || ie.Durable() {
		t.Fatalf("ENOSPC append must be non-durable (safe to re-send), got %v", derr)
	}
	if !errors.Is(derr, ErrDiskPressure) || !errors.Is(derr, wal.ErrNoSpace) {
		t.Fatalf("lost the typed chain: %v", derr)
	}
	if !p.ReadOnly() {
		t.Fatal("ENOSPC did not enter read-only")
	}
	if p.Seq() != seqBefore {
		t.Fatal("failed append advanced the sequence")
	}

	// Space frees; the same batch (same sequence) goes through, pure
	// ENOSPC mode exits read-only on the first fitting write.
	cfg.WAL.FS.(fault.DiskSpacer).AddDiskSpace(1 << 20)
	for ; next < len(w.Batches); next++ {
		if err := p.Ingest(w.Batches[next]); err != nil {
			t.Fatalf("batch %d after space freed: %v", next, err)
		}
	}
	if p.ReadOnly() {
		t.Fatal("still read-only after a successful append")
	}
	col := p.Collector()
	if got := col.Get(stats.CtrServeReadonlyExits); got != 1 {
		t.Fatalf("readonly exits %d, want 1", got)
	}
	if !statesEqual(p.Session().States(), want) {
		t.Fatal("ENOSPC-degraded run diverged from reference")
	}
}

// enospcSyncFS fails wal File.Sync with ENOSPC while *failures > 0 —
// the checkpoint barrier hitting a full volume.
type enospcSyncFS struct {
	wal.FS
	failures *int
}

func (f enospcSyncFS) Create(path string) (wal.File, error) {
	file, err := f.FS.Create(path)
	if err != nil {
		return nil, err
	}
	return &enospcSyncFile{File: file, failures: f.failures}, nil
}

type enospcSyncFile struct {
	wal.File
	failures *int
}

func (f *enospcSyncFile) Sync() error {
	if *f.failures > 0 {
		*f.failures--
		return fmt.Errorf("sync: %w", syscall.ENOSPC)
	}
	return f.File.Sync()
}

// TestPipelineCheckpointENOSPCAbsorbed: a checkpoint that cannot be
// cut for lack of space must not fail the batch — it is already
// durable and applied — and the checkpoint is retried on the next
// batch once space returns.
func TestPipelineCheckpointENOSPCAbsorbed(t *testing.T) {
	w := testWorkload(t, 4)
	cfg := pipelineConfig(t, w)
	cfg.WAL.Sync = wal.SyncNone // only Checkpoint's explicit barrier syncs
	failures := 0
	cfg.WAL.FS = enospcSyncFS{FS: wal.OSFS{}, failures: &failures}
	cfg.CheckpointEvery = 3

	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range w.Batches[:2] {
		if err := p.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	failures = 1 // batch 3 triggers a checkpoint whose barrier ENOSPCs
	if err := p.Ingest(w.Batches[2]); err != nil {
		t.Fatalf("checkpoint ENOSPC poisoned the batch: %v", err)
	}
	col := p.Collector()
	if got := col.Get(stats.CtrServeCheckpoints); got != 0 {
		t.Fatalf("checkpoint was cut despite ENOSPC: %d", got)
	}
	// Space is back: the next batch retries the checkpoint.
	if err := p.Ingest(w.Batches[3]); err != nil {
		t.Fatal(err)
	}
	if got := col.Get(stats.CtrServeCheckpoints); got != 1 {
		t.Fatalf("checkpoint not retried after space returned: %d", got)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestServerShedsUnderDiskPressure: the serve loop treats a
// disk-pressure refusal as shed work — no poisoning, no restart — and
// the run ends cleanly.
func TestServerShedsUnderDiskPressure(t *testing.T) {
	w := testWorkload(t, 6)
	cfg := pipelineConfig(t, w)
	cfg.CheckpointPath = ""
	inj := fault.New(7)
	inj.Arm(fault.NoSpace, 900)
	cfg.WAL.FS = inj.FS(wal.OSFS{})

	srv := NewServer(ServerConfig{
		Pipeline: cfg,
		Queue:    QueueConfig{Capacity: 4, MaxBatchUpdates: 1},
	})
	if err := srv.Run(context.Background(), NewSliceSource(w.Batches)); err != nil {
		t.Fatalf("disk pressure killed the server: %v", err)
	}
	col := srv.Collector()
	if got := col.Get(stats.CtrServePoisoned); got != 0 {
		t.Fatalf("%d batches poisoned under disk pressure, want 0", got)
	}
	if got := col.Get(stats.CtrServeRestarts); got != 0 {
		t.Fatalf("%d restarts under disk pressure, want 0", got)
	}
	if got := col.Get(stats.CtrServeDiskPressure); got == 0 {
		t.Fatal("no disk-pressure refusals counted")
	}
}
