package serve

import (
	"context"
	"errors"
	"fmt"
	"io"

	"github.com/tdgraph/tdgraph/internal/graph"
)

// Source yields update batches. Next returns io.EOF when the stream
// ends; any other error is a delivery failure the retry layer may
// absorb. Sources are read from a single goroutine.
type Source interface {
	Next(ctx context.Context) ([]graph.Update, error)
}

// SliceSource serves a fixed batch list — replayed workloads and tests.
type SliceSource struct {
	batches [][]graph.Update
	i       int
}

// NewSliceSource returns a source over batches.
func NewSliceSource(batches [][]graph.Update) *SliceSource {
	return &SliceSource{batches: batches}
}

func (s *SliceSource) Next(ctx context.Context) ([]graph.Update, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.i >= len(s.batches) {
		return nil, io.EOF
	}
	b := s.batches[s.i]
	s.i++
	return b, nil
}

// FuncSource adapts a function to Source.
type FuncSource func(ctx context.Context) ([]graph.Update, error)

func (f FuncSource) Next(ctx context.Context) ([]graph.Update, error) { return f(ctx) }

// ErrSourceGivenUp reports a source read abandoned after the retry
// budget was exhausted; it wraps the final delivery error.
var ErrSourceGivenUp = errors.New("serve: source retries exhausted")

// RetrySource hardens a flaky source: delivery failures are retried
// with exponential backoff and jitter, behind a circuit breaker that
// stops hammering a source that is down and probes it again after its
// reset timeout. io.EOF and caller cancellation pass straight through
// without touching the breaker — only deadline and transport errors
// count as source failures. When a failure carries a server
// retry-after hint (backpressure), the next delay is floored at it.
type RetrySource struct {
	inner   Source
	backoff *Backoff
	breaker *Breaker
	clock   Clock
	// MaxAttempts bounds tries per batch (default 8). Exhaustion
	// returns an error wrapping ErrSourceGivenUp and the last failure.
	MaxAttempts int

	retries uint64
}

// NewRetrySource wraps src. Nil backoff, breaker or clock get
// defaults (seeded from `seed`, real time).
func NewRetrySource(src Source, backoff *Backoff, breaker *Breaker, clock Clock, seed int64) *RetrySource {
	if clock == nil {
		clock = RealClock{}
	}
	if backoff == nil {
		backoff = NewBackoff(seed)
	}
	if breaker == nil {
		breaker = NewBreaker(0, 0, clock)
	}
	return &RetrySource{inner: src, backoff: backoff, breaker: breaker, clock: clock, MaxAttempts: 8}
}

// Retries returns how many delivery retries have happened.
func (r *RetrySource) Retries() uint64 { return r.retries }

// Breaker exposes the circuit breaker for observability.
func (r *RetrySource) Breaker() *Breaker { return r.breaker }

func (r *RetrySource) Next(ctx context.Context) ([]graph.Update, error) {
	max := r.MaxAttempts
	if max <= 0 {
		max = 8
	}
	var lastErr error
	for attempt := 0; attempt < max; attempt++ {
		if !r.breaker.Allow() {
			// Open breaker: wait out the reset timeout instead of
			// burning attempts against a source known to be down.
			if err := r.clock.Sleep(ctx, r.breaker.ResetTimeout); err != nil {
				return nil, err
			}
			attempt--
			continue
		}
		batch, err := r.inner.Next(ctx)
		if err == nil || errors.Is(err, io.EOF) {
			r.breaker.Record(nil)
			return batch, err
		}
		if ctx.Err() != nil || errors.Is(err, context.Canceled) {
			// The caller gave up (or a cancellation bubbled through the
			// source): not a source failure. No retry, and crucially no
			// breaker accounting — a shutdown must never trip the breaker
			// open for the next session.
			return batch, err
		}
		// Everything else — timeouts, expired batch deadlines, transport
		// failures — feeds the breaker and is retried.
		r.breaker.Record(err)
		lastErr = err
		r.retries++
		delay := r.backoff.Delay(attempt)
		var hint retryAfterHint
		if errors.As(err, &hint) {
			// The server told us when it wants to hear from us again;
			// honor it as a floor on the backoff.
			if ra := hint.RetryAfterHint(); ra > delay {
				delay = ra
			}
		}
		if err := r.clock.Sleep(ctx, delay); err != nil {
			return nil, err
		}
	}
	return nil, fmt.Errorf("%w after %d attempts: %w", ErrSourceGivenUp, max, lastErr)
}
