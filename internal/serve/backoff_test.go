package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock drives the retry and breaker logic without sleeping: Sleep
// records the request and advances time instantly.
type fakeClock struct {
	mu    sync.Mutex
	now   time.Time
	slept []time.Duration
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.slept = append(c.slept, d)
	c.now = c.now.Add(d)
	return nil
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func TestBackoffExponentialGrowth(t *testing.T) {
	b := NewBackoff(1)
	b.Jitter = 0 // exact sequence
	for _, tc := range []struct {
		attempt int
		want    time.Duration
	}{
		{0, 50 * time.Millisecond},
		{1, 100 * time.Millisecond},
		{2, 200 * time.Millisecond},
		{3, 400 * time.Millisecond},
		{7, 6400 * time.Millisecond},
		{8, 10 * time.Second}, // 12.8s capped at Max
		{20, 10 * time.Second},
	} {
		if got := b.Delay(tc.attempt); got != tc.want {
			t.Errorf("Delay(%d) = %v, want %v", tc.attempt, got, tc.want)
		}
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	b := NewBackoff(42)
	nominal := []time.Duration{50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond}
	for round := 0; round < 200; round++ {
		for attempt, n := range nominal {
			d := b.Delay(attempt)
			lo := time.Duration(float64(n) * (1 - b.Jitter/2))
			hi := time.Duration(float64(n) * (1 + b.Jitter/2))
			if d < lo || d > hi {
				t.Fatalf("Delay(%d) = %v outside jitter band [%v, %v]", attempt, d, lo, hi)
			}
		}
	}
}

func TestBackoffJitterDeterministic(t *testing.T) {
	a, b := NewBackoff(7), NewBackoff(7)
	for i := 0; i < 32; i++ {
		if da, db := a.Delay(i%6), b.Delay(i%6); da != db {
			t.Fatalf("same seed diverged at call %d: %v vs %v", i, da, db)
		}
	}
}

func TestBackoffCapHoldsUnderJitter(t *testing.T) {
	b := NewBackoff(3)
	b.Max = 200 * time.Millisecond
	for i := 0; i < 100; i++ {
		if d := b.Delay(10); d > b.Max {
			t.Fatalf("jittered delay %v exceeds cap %v", d, b.Max)
		}
	}
}

func TestBreakerLifecycle(t *testing.T) {
	clock := newFakeClock()
	br := NewBreaker(3, 5*time.Second, clock)
	boom := errors.New("boom")

	// Closed: failures below the threshold keep calls flowing.
	for i := 0; i < 2; i++ {
		if !br.Allow() {
			t.Fatal("closed breaker refused a call")
		}
		br.Record(boom)
	}
	if br.State() != BreakerClosed {
		t.Fatalf("state %v, want closed", br.State())
	}

	// Third consecutive failure opens it.
	br.Record(boom)
	if br.State() != BreakerOpen {
		t.Fatalf("state %v, want open", br.State())
	}
	if br.Allow() {
		t.Fatal("open breaker allowed a call before the reset timeout")
	}

	// Reset timeout elapses: half-open, trial calls flow.
	clock.Advance(5 * time.Second)
	if !br.Allow() {
		t.Fatal("breaker did not half-open after the reset timeout")
	}
	if br.State() != BreakerHalfOpen {
		t.Fatalf("state %v, want half-open", br.State())
	}

	// A half-open failure reopens immediately.
	br.Record(boom)
	if br.State() != BreakerOpen {
		t.Fatalf("state %v, want open after half-open failure", br.State())
	}
	if got := br.Opens(); got != 2 {
		t.Fatalf("opens = %d, want 2", got)
	}

	// Second probe succeeds: closed, failure count cleared.
	clock.Advance(5 * time.Second)
	if !br.Allow() {
		t.Fatal("breaker did not half-open again")
	}
	br.Record(nil)
	if br.State() != BreakerClosed {
		t.Fatalf("state %v, want closed after successful probe", br.State())
	}
	// The old failures are gone: two new ones must not trip it.
	br.Record(boom)
	br.Record(boom)
	if br.State() != BreakerClosed {
		t.Fatal("failure count survived the close")
	}
}

func TestBreakerSuccessResetsCount(t *testing.T) {
	br := NewBreaker(2, time.Second, newFakeClock())
	boom := errors.New("boom")
	for i := 0; i < 10; i++ {
		br.Record(boom)
		br.Record(nil) // success between failures: never two consecutive
	}
	if br.State() != BreakerClosed || br.Opens() != 0 {
		t.Fatalf("interleaved failures tripped the breaker: %v, opens %d", br.State(), br.Opens())
	}
}
