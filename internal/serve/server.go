package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	tdgraph "github.com/tdgraph/tdgraph"
	"github.com/tdgraph/tdgraph/internal/sim"
	"github.com/tdgraph/tdgraph/internal/stats"
)

// ServerConfig parameterises the serve loop around a pipeline config.
type ServerConfig struct {
	Pipeline PipelineConfig
	Queue    QueueConfig
	// MaxRestarts bounds supervisor-driven pipeline restarts before the
	// server gives up (default 3; negative means unlimited).
	MaxRestarts int
	// MaxBatchFailures poisons a batch — skips it — after this many
	// failed re-attempts of the same sequence (default 3).
	MaxBatchFailures int
	// OnEvent, when set, receives one human-readable line per notable
	// event (restarts, poisonings, shedding); nil discards them. It may
	// be called from the reader and serve goroutines concurrently.
	OnEvent func(string)
	// SLO is the ingest-latency objective (the -slo flag): when set, an
	// admission controller watches ingest latency and queue depth and
	// tightens the queue (coalesce harder, then shed) to defend it. 0
	// disables SLO-driven admission control.
	SLO time.Duration
	// Clock is the time source latency is measured on (default real).
	Clock Clock
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.MaxRestarts == 0 {
		c.MaxRestarts = 3
	}
	if c.MaxBatchFailures <= 0 {
		c.MaxBatchFailures = 3
	}
	if c.OnEvent == nil {
		c.OnEvent = func(string) {}
	}
	if c.Clock == nil {
		c.Clock = RealClock{}
	}
	if c.Queue.Capacity <= 0 {
		c.Queue.Capacity = 16
	}
	return c
}

// ErrTooManyRestarts reports a server that exhausted its restart
// budget: the pipeline kept failing in ways recovery could not mend.
var ErrTooManyRestarts = errors.New("serve: restart budget exhausted")

// Server runs the full ingestion service: a reader goroutine pulls
// batches from the source into the bounded queue, and the serve loop
// drains the queue into the durable pipeline under a supervisor that
// converts watchdog trips and recovered panics into bounded restarts
// from the newest checkpoint plus WAL replay. Cancel the context to
// begin a graceful drain: admission stops, queued batches finish, the
// WAL is flushed and a final checkpoint is cut.
type Server struct {
	cfg  ServerConfig
	col  *stats.Collector
	pipe *Pipeline
	slo  *SLOController
}

// NewServer builds a server; the pipeline is not opened until Run.
func NewServer(cfg ServerConfig) *Server {
	cfg = cfg.withDefaults()
	cfg.Pipeline = cfg.Pipeline.withDefaults()
	s := &Server{cfg: cfg, col: cfg.Pipeline.Collector}
	if cfg.Queue.SLO != nil {
		s.slo = cfg.Queue.SLO
	} else {
		s.slo = NewSLOController(SLOConfig{Target: cfg.SLO})
		s.cfg.Queue.SLO = s.slo
	}
	return s
}

// SLO exposes the admission controller (nil when disabled).
func (s *Server) SLO() *SLOController { return s.slo }

// Collector returns the server's counter set.
func (s *Server) Collector() *stats.Collector { return s.col }

// Pipeline returns the live pipeline after Run has started it (nil
// before). Intended for post-Run inspection in tests and CLIs.
func (s *Server) Pipeline() *Pipeline { return s.pipe }

// Run serves src until it ends (io.EOF), ctx is cancelled (graceful
// drain), or the restart budget is exhausted. It returns the first
// fatal error, or nil after a clean drain.
func (s *Server) Run(ctx context.Context, src Source) error {
	pipe, err := NewPipeline(s.cfg.Pipeline)
	if err != nil {
		return err
	}
	s.pipe = pipe

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	q := NewQueue(s.cfg.Queue)

	// Reader: source → queue. Owns queue closure; shedding is counted,
	// not fatal. A cancelled context stops admission so the serve loop
	// drains what is already queued. The collector is unsynchronized by
	// design, so the reader keeps private counts folded in after the
	// join below.
	var readErr error
	var admitted uint64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer q.Close()
		for {
			batch, err := src.Next(ctx)
			switch {
			case err == nil:
			case errors.Is(err, io.EOF), errors.Is(err, context.Canceled),
				errors.Is(err, context.DeadlineExceeded):
				return
			default:
				readErr = err
				return
			}
			if err := q.Put(batch); err != nil {
				if errors.Is(err, ErrShed) {
					s.cfg.OnEvent(fmt.Sprintf("shed batch of %d updates (queue full)", len(batch)))
					continue
				}
				return // queue closed under us: server is shutting down
			}
			admitted++
		}
	}()

	serveErr := s.serveLoop(q)

	// A fatal serve error leaves the reader running; unblock it so the
	// drain below cannot deadlock on a full queue.
	cancel()
	q.Close()
	wg.Wait()
	s.col.Add(stats.CtrServeAdmitted, admitted)
	s.foldQueueStats(q)
	if rs, ok := src.(*RetrySource); ok {
		s.col.Set(stats.CtrServeRetries, rs.Retries())
		s.col.Set(stats.CtrServeBreakerOpen, rs.Breaker().Opens())
	}

	closeErr := pipe.Close()
	switch {
	case serveErr != nil:
		return serveErr
	case readErr != nil:
		return fmt.Errorf("serve: source failed: %w", readErr)
	default:
		return closeErr
	}
}

// serveLoop drains the queue into the pipeline, supervising failures.
// Each batch is re-attempted while the failure is non-durable (the WAL
// file never saw its record) up to MaxBatchFailures, then poisoned.
// Failures once the record reached the log — a failed fsync barrier
// ("wal-sync"), engine panics surfacing through checkpoint writes,
// watchdog trips — trigger a pipeline restart that recovers from the
// newest checkpoint and WAL replay; the batch itself is already in the
// log, so it is never re-sent.
func (s *Server) serveLoop(q *Queue) error {
	restarts := 0
	for {
		batch, err := q.Get()
		if err != nil {
			return nil // closed and drained
		}

		failures := 0
	attempt:
		start := s.cfg.Clock.Now()
		ierr := s.pipe.Ingest(batch)
		// Feed the admission controller every attempt: slow or failing
		// ingest is exactly the signal that should tighten the queue.
		s.slo.Observe(s.cfg.Clock.Now().Sub(start), q.Len(), s.cfg.Queue.Capacity)
		if ierr == nil {
			continue
		}

		var ie *IngestError
		durable := errors.As(ierr, &ie) && ie.Durable()
		if durable && ie.Stage == "replicate" {
			// Quorum lost or fenced by a newer term: restarting cannot
			// restore either, and a fenced primary acknowledging batches
			// would lose them silently. Halt; failover owns the cluster.
			if errors.Is(ierr, ErrFenced) {
				s.cfg.OnEvent(fmt.Sprintf("halting: fenced by a newer term (%v)", ierr))
			} else {
				s.cfg.OnEvent(fmt.Sprintf("halting: replication quorum unavailable (%v)", ierr))
			}
			return ierr
		}
		if !durable {
			if errors.Is(ierr, ErrDiskPressure) {
				// Read-only under disk pressure: retrying immediately hits
				// the same wall and poisoning would misreport a healthy
				// batch. Shed it — the pipeline already counted the
				// refusal — and keep draining so heartbeats/reads flow.
				s.cfg.OnEvent(fmt.Sprintf("shed batch of %d updates (disk pressure)", len(batch)))
				continue
			}
			// The batch never reached the log: re-attempt it against the
			// same pipeline, then poison.
			failures++
			if failures < s.cfg.MaxBatchFailures {
				goto attempt
			}
			s.col.Inc(stats.CtrServePoisoned)
			s.cfg.OnEvent(fmt.Sprintf("poisoned batch after %d failures: %v", failures, ierr))
			continue
		}

		// Durable failure: the state machine may be wedged (watchdog
		// trip, panic during checkpointing). Restart from durable state.
		if s.cfg.MaxRestarts >= 0 && restarts >= s.cfg.MaxRestarts {
			return fmt.Errorf("%w (%d restarts): %w", ErrTooManyRestarts, restarts, ierr)
		}
		restarts++
		s.col.Inc(stats.CtrServeRestarts)
		s.cfg.OnEvent(fmt.Sprintf("restart %d: %s", restarts, describeFailure(ierr)))
		if err := s.restartPipeline(); err != nil {
			return fmt.Errorf("serve: restart %d failed: %w", restarts, err)
		}
	}
}

// restartPipeline closes the wedged pipeline (best effort — its state
// is suspect) and reopens it from the newest checkpoint + WAL replay.
func (s *Server) restartPipeline() error {
	_ = s.pipe.log.Close() // skip the final checkpoint: state is suspect
	s.pipe.sess.Close()    // release the wedged session's worker pool
	pipe, err := NewPipeline(s.cfg.Pipeline)
	if err != nil {
		return err
	}
	s.pipe = pipe
	return nil
}

// describeFailure names the engine-level cause for the event log.
func describeFailure(err error) string {
	var we *sim.WatchdogError
	if errors.As(err, &we) {
		return fmt.Sprintf("watchdog trip (%v)", we)
	}
	var pe *tdgraph.PanicError
	if errors.As(err, &pe) {
		return fmt.Sprintf("recovered panic (%v)", pe)
	}
	return err.Error()
}

func (s *Server) foldQueueStats(q *Queue) {
	qs := q.Stats()
	s.col.Set(stats.CtrServeShed, qs.Shed)
	s.col.Set(stats.CtrServeCoalesced, qs.Coalesced)
	s.col.Set(stats.CtrQueueShedSLO, qs.ShedSLO)
	s.col.Set(stats.CtrQueueCoalescedSLO, qs.CoalescedSLO)
}
