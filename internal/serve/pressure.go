package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// This file is the overload ladder: typed deadline / disk-pressure
// errors and the SLO admission controller. The ladder degrades in
// order — miss a deadline (per-batch), advertise backpressure
// (retry-after on Reject), refuse writes entirely (read-only under
// disk pressure) — and every rung is retryable: nothing here poisons
// state or kills a session.

// ErrDeadline marks a batch abandoned because its deadline expired
// before it became durable. Retryable: re-sending the same batch (same
// sequence) is always safe — expiry is only ever reported for work
// that was refused before the WAL append or failed quorum afterwards,
// and the exactly-once machinery dedupes a re-send either way.
var ErrDeadline = errors.New("serve: batch deadline exceeded")

// DeadlineError locates where in the ingest ladder a deadline died:
// "admit" (refused before the WAL append — nothing happened) or
// "replicate" (the quorum wait outlived it). errors.Is sees
// ErrDeadline through it.
type DeadlineError struct {
	Stage string
}

func (e *DeadlineError) Error() string {
	return fmt.Sprintf("serve: batch deadline expired in stage %q", e.Stage)
}

func (e *DeadlineError) Unwrap() error { return ErrDeadline }

// NewDeadlineError locates a deadline expiry at stage. Foreign
// packages (the replication transport reports "submit" and
// "replicate" expiries) construct through it so the wrapping contract
// stays in this package.
func NewDeadlineError(stage string) *DeadlineError { return &DeadlineError{Stage: stage} }

// ErrDiskPressure marks an ingest refused because the volume under the
// WAL is out of (or nearly out of) space. Retryable after space frees:
// the pipeline enters read-only, keeps serving reads and heartbeats,
// and resumes ingestion automatically once the free-space probe clears
// the high-water mark.
var ErrDiskPressure = errors.New("serve: ingest refused under disk pressure")

// DiskPressureError carries the free-space reading that tripped the
// refusal. errors.Is sees ErrDiskPressure through it.
type DiskPressureError struct {
	Op       string // what hit the wall: "admit", "append", "checkpoint"
	Free     uint64 // bytes free at the probe (0 when unknown/ENOSPC)
	LowWater uint64 // the threshold in force
}

func (e *DiskPressureError) Error() string {
	return fmt.Sprintf("serve: disk pressure at %s: %d bytes free, low-water %d", e.Op, e.Free, e.LowWater)
}

func (e *DiskPressureError) Unwrap() error { return ErrDiskPressure }

// retryAfterHint is the probe RetrySource uses to honor a server's
// backpressure hint: any error in the chain exposing RetryAfterHint
// floors the next backoff delay at that duration.
type retryAfterHint interface {
	RetryAfterHint() time.Duration
}

// PressureLevel is the SLO controller's admission posture, escalating
// from business-as-usual through forced coalescing to shedding.
type PressureLevel int

const (
	// PressureNone: admit normally.
	PressureNone PressureLevel = iota
	// PressureCoalesce: merge eagerly before queueing more entries.
	PressureCoalesce
	// PressureShed: refuse new work (with a retry-after hint) until
	// latency recovers.
	PressureShed
)

func (p PressureLevel) String() string {
	switch p {
	case PressureCoalesce:
		return "coalesce"
	case PressureShed:
		return "shed"
	default:
		return "none"
	}
}

// SLOConfig parameterises the admission controller.
type SLOConfig struct {
	// Target is the ingest-latency objective (the -slo flag). Zero
	// disables the controller entirely.
	Target time.Duration
	// EscalateAfter is how many consecutive over-target observations
	// raise the pressure one level (default 4); RelaxAfter is how many
	// consecutive healthy ones lower it (default 8). Escalating is
	// deliberately twice as eager as relaxing.
	EscalateAfter int
	RelaxAfter    int
}

// SLOController turns a stream of (latency, queue depth) observations
// into a pressure level. It is deterministic: no goroutine, no timer —
// callers observe with latencies measured on the injected clock, so
// the same run produces the same pressure trajectory. A nil controller
// is valid and always reports PressureNone.
type SLOController struct {
	cfg SLOConfig

	mu         sync.Mutex
	ewma       time.Duration // smoothed latency, alpha = 1/4
	level      PressureLevel
	hotStreak  int
	coolStreak int
}

// NewSLOController builds a controller for the given objective, or
// returns nil (controller disabled) when the target is zero.
func NewSLOController(cfg SLOConfig) *SLOController {
	if cfg.Target <= 0 {
		return nil
	}
	if cfg.EscalateAfter <= 0 {
		cfg.EscalateAfter = 4
	}
	if cfg.RelaxAfter <= 0 {
		cfg.RelaxAfter = 8
	}
	return &SLOController{cfg: cfg}
}

// Observe feeds one ingest measurement: how long the batch took to
// become durable and how deep the admission queue was (capacity <= 0
// when the caller has no queue). Escalation needs a streak in either
// signal; a single slow batch never trips the ladder.
func (c *SLOController) Observe(latency time.Duration, depth, capacity int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ewma == 0 {
		c.ewma = latency
	} else {
		c.ewma = (3*c.ewma + latency) / 4
	}
	hot := c.ewma > c.cfg.Target || (capacity > 0 && depth*4 >= capacity*3)
	cool := c.ewma <= c.cfg.Target/2 && (capacity <= 0 || depth*4 <= capacity)
	switch {
	case hot:
		c.coolStreak = 0
		c.hotStreak++
		if c.hotStreak >= c.cfg.EscalateAfter && c.level < PressureShed {
			c.level++
			c.hotStreak = 0
		}
	case cool:
		c.hotStreak = 0
		c.coolStreak++
		if c.coolStreak >= c.cfg.RelaxAfter && c.level > PressureNone {
			c.level--
			c.coolStreak = 0
		}
	default:
		c.hotStreak, c.coolStreak = 0, 0
	}
}

// Level reports the current admission posture.
func (c *SLOController) Level() PressureLevel {
	if c == nil {
		return PressureNone
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.level
}

// Target reports the configured objective (0 for a nil controller).
func (c *SLOController) Target() time.Duration {
	if c == nil {
		return 0
	}
	return c.cfg.Target
}

// RetryAfter is the backpressure hint to advertise to clients while
// shedding: how far the smoothed latency is over target, clamped to
// [target/4, 4*target]. Zero below PressureShed.
func (c *SLOController) RetryAfter() time.Duration {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.level < PressureShed {
		return 0
	}
	ra := c.ewma - c.cfg.Target
	if ra < c.cfg.Target/4 {
		ra = c.cfg.Target / 4
	}
	if ra > 4*c.cfg.Target {
		ra = 4 * c.cfg.Target
	}
	return ra
}
