// Package serve is the availability layer of the ingestion path: it
// turns the batch-at-a-time Session API into a long-running service.
// Sources feed a bounded queue under admission control; flaky sources
// are retried with exponential backoff behind a circuit breaker; every
// admitted batch is made durable in the write-ahead log before it
// touches the session; and a supervisor converts engine failures into
// bounded restarts that recover from the newest checkpoint plus WAL
// replay. Overload degrades gracefully — batch granularity grows
// before anything is shed — and shutdown drains, flushes and writes a
// final checkpoint.
package serve

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"time"
)

// Clock abstracts time for the retry and breaker logic, so tests drive
// every transition with a fake clock instead of sleeping.
type Clock interface {
	Now() time.Time
	// Sleep blocks for d or until ctx is done, returning ctx.Err() in
	// the latter case.
	Sleep(ctx context.Context, d time.Duration) error
}

// RealClock is the production clock.
type RealClock struct{}

func (RealClock) Now() time.Time { return time.Now() }

func (RealClock) Sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Backoff computes retry delays: exponential growth from Base by
// Multiplier, capped at Max, with a symmetric ±Jitter/2 fraction of
// seeded jitter so a fleet of retriers never thunders in lockstep.
// Deterministic for a given seed and call sequence.
type Backoff struct {
	Base       time.Duration // first delay (default 50ms)
	Max        time.Duration // hard cap on any delay (default 10s)
	Multiplier float64       // growth per attempt (default 2)
	Jitter     float64       // total jitter fraction in [0,1) (default 0.2)
	rng        *rand.Rand
}

// NewBackoff returns a backoff with the defaults and a seeded jitter
// stream.
func NewBackoff(seed int64) *Backoff {
	return &Backoff{
		Base:       50 * time.Millisecond,
		Max:        10 * time.Second,
		Multiplier: 2,
		Jitter:     0.2,
		rng:        rand.New(rand.NewSource(seed)),
	}
}

// Delay returns the delay before retry `attempt` (0-based). Without
// jitter the sequence is exactly Base·Multiplierᵃ capped at Max; with
// jitter each delay is scaled by a factor in [1−J/2, 1+J/2) and the
// cap still holds.
func (b *Backoff) Delay(attempt int) time.Duration {
	base, max, mult := b.Base, b.Max, b.Multiplier
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max <= 0 {
		max = 10 * time.Second
	}
	if mult < 1 {
		mult = 2
	}
	d := float64(base) * math.Pow(mult, float64(attempt))
	if d > float64(max) {
		d = float64(max)
	}
	if b.Jitter > 0 && b.rng != nil {
		d *= 1 - b.Jitter/2 + b.rng.Float64()*b.Jitter
	}
	if d > float64(max) {
		d = float64(max)
	}
	return time.Duration(d)
}

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed: calls flow, consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: calls are refused until the reset timeout elapses.
	BreakerOpen
	// BreakerHalfOpen: trial calls flow; one success closes, one
	// failure reopens.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker is a consecutive-failure circuit breaker guarding a flaky
// source: after FailureThreshold consecutive failures it opens and
// refuses calls for ResetTimeout, then half-opens to probe with trial
// calls. Safe for concurrent use.
type Breaker struct {
	FailureThreshold int           // consecutive failures to open (default 5)
	ResetTimeout     time.Duration // open → half-open delay (default 5s)

	clock    Clock
	mu       sync.Mutex
	state    BreakerState
	failures int
	openedAt time.Time
	opens    uint64
}

// NewBreaker returns a closed breaker on the given clock (nil = real
// time).
func NewBreaker(threshold int, reset time.Duration, clock Clock) *Breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if reset <= 0 {
		reset = 5 * time.Second
	}
	if clock == nil {
		clock = RealClock{}
	}
	return &Breaker{FailureThreshold: threshold, ResetTimeout: reset, clock: clock}
}

// Allow reports whether a call may proceed, flipping open → half-open
// once the reset timeout has elapsed.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen {
		if b.clock.Now().Sub(b.openedAt) < b.ResetTimeout {
			return false
		}
		b.state = BreakerHalfOpen
	}
	return true
}

// Record feeds a call outcome to the breaker: success closes (and
// clears the failure count), failure counts toward the threshold and
// reopens immediately from half-open.
func (b *Breaker) Record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err == nil {
		b.state = BreakerClosed
		b.failures = 0
		return
	}
	b.failures++
	if b.state == BreakerHalfOpen || b.failures >= b.FailureThreshold {
		if b.state != BreakerOpen {
			b.opens++
		}
		b.state = BreakerOpen
		b.openedAt = b.clock.Now()
		b.failures = 0
	}
}

// State returns the current position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens returns how many times the breaker has opened.
func (b *Breaker) Opens() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
