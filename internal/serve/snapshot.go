package serve

import (
	tdgraph "github.com/tdgraph/tdgraph"
)

// SnapshotSource reads the newest shippable checkpoint generation for
// follower reseeds. It satisfies the replica layer's SnapshotSource
// interface structurally (serve never imports the transport), and it
// reads straight from the rotating generation files, so it works both
// before the pipeline is open — the primary attaches followers first —
// and while the pipeline keeps cutting new generations underneath it:
// each NewestSnapshot call re-resolves the newest valid pair.
type SnapshotSource struct {
	ck *tdgraph.Checkpointer
}

// NewSnapshotSource returns a source over the rotating checkpoint
// generations rooted at path (keep <= 0 means the default retention).
func NewSnapshotSource(path string, keep int) *SnapshotSource {
	return &SnapshotSource{ck: &tdgraph.Checkpointer{Path: path, Keep: keep}}
}

// SnapshotSource returns a source over this pipeline's own checkpoint
// generations, or nil when checkpointing is disabled (callers must
// check: a typed nil inside an interface would defeat their nil test).
func (p *Pipeline) SnapshotSource() *SnapshotSource {
	if p.ck == nil {
		return nil
	}
	return &SnapshotSource{ck: p.ck}
}

// NewestSnapshot returns the newest checkpoint generation whose
// metadata sidecar validates: the WAL sequence it covers, the sidecar
// payload, and the checkpoint file's raw bytes.
func (s *SnapshotSource) NewestSnapshot() (uint64, []byte, []byte, error) {
	data, meta, err := s.ck.NewestWithMeta()
	if err != nil {
		return 0, nil, nil, err
	}
	seq, err := decodeSeqMeta(meta)
	if err != nil {
		return 0, nil, nil, err
	}
	return seq, meta, data, nil
}
