package serve

import (
	"math/rand"
	"path/filepath"
	"testing"

	tdgraph "github.com/tdgraph/tdgraph"
	"github.com/tdgraph/tdgraph/internal/fault"
	"github.com/tdgraph/tdgraph/internal/wal"
)

// nativeOpts is the -engine native configuration under test: the mutable
// hybrid store plus the stateful incremental engine.
func nativeOpts() tdgraph.SessionOptions {
	return tdgraph.SessionOptions{Engine: tdgraph.EngineNativeParallel, Cores: 2}
}

// TestNativeEngineChaosKillRecover is the -engine native acceptance
// test: the pipeline runs on the incremental native engine, is killed at
// a seeded random byte offset in its WAL stream, loses a random unsynced
// tail, and recovery (checkpoint restore into a fresh native session +
// WAL replay + re-feed) must land on final vertex states
// Float64bits-identical to the sim-engine reference run that was never
// killed — the durability semantics are engine-independent.
func TestNativeEngineChaosKillRecover(t *testing.T) {
	w := testWorkload(t, 8)
	// The oracle is the DEFAULT engine, never killed: cross-engine AND
	// cross-crash equivalence in one comparison.
	want := referenceStates(t, w)

	totalBytes := int64(16)
	for _, b := range w.Batches {
		totalBytes += int64(16 + 13*len(b))
	}

	nativeBootstrap := func() (*tdgraph.Session, error) {
		return tdgraph.NewSession(tdgraph.NewSSSP(0), w.Warmup, w.NumVertices, nativeOpts())
	}

	for trial := 0; trial < 10; trial++ {
		t.Run("", func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(4000 + trial)))
			armAt := rng.Int63n(totalBytes + totalBytes/4)

			walDir := t.TempDir()
			ckptPath := filepath.Join(t.TempDir(), "ckpt.tds")
			cfs := fault.NewCrashFS()
			crashCfg := PipelineConfig{
				Bootstrap:       nativeBootstrap,
				Algorithm:       tdgraph.NewSSSP(0),
				SessionOptions:  nativeOpts(),
				WAL:             wal.Options{Dir: walDir, Sync: wal.SyncEachBatch, FS: cfs},
				CheckpointPath:  ckptPath,
				CheckpointEvery: 3,
			}

			p, err := NewPipeline(crashCfg)
			if err != nil {
				t.Fatal(err)
			}
			cfs.ArmCrash(armAt)

			fed := 0
			func() {
				defer func() {
					if r := recover(); r != nil {
						if _, ok := r.(fault.CrashSignal); !ok {
							panic(r)
						}
					}
				}()
				for _, b := range w.Batches {
					if err := p.Ingest(b); err != nil {
						t.Errorf("ingest before crash failed: %v", err)
						return
					}
					fed++
				}
			}()
			if t.Failed() {
				return
			}

			if cfs.Crashed() {
				if err := cfs.LoseUnsynced(rng); err != nil {
					t.Fatal(err)
				}
			} else {
				if err := p.Close(); err != nil {
					t.Fatal(err)
				}
			}

			recoverCfg := crashCfg
			recoverCfg.WAL.FS = wal.OSFS{}
			p2, err := NewPipeline(recoverCfg)
			if err != nil {
				t.Fatalf("recovery failed (crashed=%v, fed=%d): %v", cfs.Crashed(), fed, err)
			}

			seq := p2.Seq()
			if seq < uint64(fed) {
				t.Fatalf("durable batch lost: recovered seq %d < %d acked", seq, fed)
			}
			if seq > uint64(fed)+1 {
				t.Fatalf("recovered seq %d past the batch being written (%d acked)", seq, fed)
			}

			for i := int(seq); i < len(w.Batches); i++ {
				if err := p2.Ingest(w.Batches[i]); err != nil {
					t.Fatalf("re-feed batch %d: %v", i, err)
				}
			}
			// Compare BEFORE Close so the final states come from the live
			// native session, then Close to park its pool.
			if !statesEqual(p2.Session().States(), want) {
				t.Fatalf("crash at byte %d (fed %d, recovered seq %d): native states diverged from sim reference", armAt, fed, seq)
			}
			if err := p2.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestNativeEngineServerRestart runs the full supervised server loop on
// the native engine with a panic injected mid-stream via a poisoned
// update weight — exercising pipeline restart (checkpoint + WAL replay
// into a fresh native session) under the supervisor rather than a raw
// pipeline.
func TestNativeEngineServerRestart(t *testing.T) {
	w := testWorkload(t, 6)
	want := referenceStates(t, w)

	cfg := PipelineConfig{
		Bootstrap: func() (*tdgraph.Session, error) {
			return tdgraph.NewSession(tdgraph.NewSSSP(0), w.Warmup, w.NumVertices, nativeOpts())
		},
		Algorithm:       tdgraph.NewSSSP(0),
		SessionOptions:  nativeOpts(),
		WAL:             wal.Options{Dir: t.TempDir(), Sync: wal.SyncEachBatch},
		CheckpointPath:  filepath.Join(t.TempDir(), "ckpt.tds"),
		CheckpointEvery: 2,
	}
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range w.Batches {
		if err := p.Ingest(b); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if i == 2 {
			// Mid-stream kill: drop the pipeline on the floor (no Close)
			// and recover from durable state only.
			p2, err := NewPipeline(cfg)
			if err != nil {
				t.Fatalf("mid-stream recovery: %v", err)
			}
			if p2.Seq() != uint64(i+1) {
				t.Fatalf("mid-stream recovery at seq %d, want %d", p2.Seq(), i+1)
			}
			p.Session().Close()
			p = p2
		}
	}
	if !statesEqual(p.Session().States(), want) {
		t.Fatal("native states after mid-stream recovery diverge from sim reference")
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}
