package serve

import (
	"errors"
	"fmt"
	"sync"

	"github.com/tdgraph/tdgraph/internal/graph"
	"github.com/tdgraph/tdgraph/internal/stream"
)

// AdmitPolicy selects what a full queue does with the next batch.
type AdmitPolicy int

const (
	// AdmitBlock applies backpressure: Put blocks until space opens
	// (after granularity growth is exhausted).
	AdmitBlock AdmitPolicy = iota
	// AdmitShed drops the incoming batch with ErrShed once granularity
	// growth is exhausted — availability over completeness.
	AdmitShed
)

// ParseAdmitPolicy maps a -admit flag value to a policy.
func ParseAdmitPolicy(s string) (AdmitPolicy, error) {
	switch s {
	case "", "block":
		return AdmitBlock, nil
	case "shed":
		return AdmitShed, nil
	}
	return 0, errors.New("serve: unknown admission policy " + s + " (block|shed)")
}

// ErrShed reports a batch dropped by admission control.
var ErrShed = errors.New("serve: batch shed by admission control")

// ErrQueueClosed reports an operation on a closed queue: Put after
// Close, or Get after Close once the queue has drained.
var ErrQueueClosed = errors.New("serve: ingest queue closed")

// updateWireBytes is one update's size in the WAL/wire encoding
// (src u32 | dst u32 | weight f32 | flags u8) — the unit of the
// queue's byte accounting, chosen to track what a queued batch will
// actually cost downstream.
const updateWireBytes = 13

// batchBytes is the wire size a batch will occupy once encoded.
func batchBytes(b []graph.Update) int64 {
	return int64(len(b)) * updateWireBytes
}

// QueueConfig bounds the ingest queue.
type QueueConfig struct {
	// Capacity is the maximum queued batches (default 16).
	Capacity int
	// Policy is what a full queue does (default AdmitBlock).
	Policy AdmitPolicy
	// MaxBatchUpdates caps a coalesced batch's size; merging two queued
	// batches frees a slot only while the result stays within it. 0 (the
	// default) means no cap: under sustained overload the two oldest
	// batches keep merging without limit.
	MaxBatchUpdates int
	// MaxBytes bounds the total wire bytes queued (0 = unbounded). A
	// queue at its byte bound behaves exactly like one at Capacity:
	// coalesce, then the admission policy. A single batch larger than
	// MaxBytes is still admitted when the queue is empty — an oversized
	// batch must pass through alone, never wedge.
	MaxBytes int64
	// SLO, when non-nil, lets the admission controller tighten the
	// queue: at PressureCoalesce batches merge eagerly before new
	// entries queue, at PressureShed incoming work is dropped while a
	// backlog exists.
	SLO *SLOController
}

// QueueStats counts admission outcomes.
type QueueStats struct {
	Admitted     uint64 // batches accepted
	Shed         uint64 // batches dropped (AdmitShed or SLO pressure)
	Coalesced    uint64 // merges performed to absorb overload
	ShedSLO      uint64 // subset of Shed forced by the SLO controller
	CoalescedSLO uint64 // subset of Coalesced forced by the SLO controller
	MaxDepth     int    // high-water mark of queued batches
}

// Queue is the bounded buffer between sources and the durable
// pipeline. Under overload it first grows batch granularity — the two
// oldest queued batches merge into one, trading incremental-processing
// efficiency for queue space — and only when no merge is possible does
// the admission policy decide between blocking and shedding. Bounds
// are both batch-count (Capacity) and byte-based (MaxBytes). Safe for
// one producer and one consumer (or several of each).
type Queue struct {
	mu       sync.Mutex
	notFull  *sync.Cond
	notEmpty *sync.Cond
	items    [][]graph.Update
	bytes    int64 // wire bytes across items
	cfg      QueueConfig
	closed   bool
	stats    QueueStats
}

// NewQueue returns an open queue.
func NewQueue(cfg QueueConfig) *Queue {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 16
	}
	q := &Queue{cfg: cfg}
	q.notFull = sync.NewCond(&q.mu)
	q.notEmpty = sync.NewCond(&q.mu)
	return q
}

// fullLocked reports whether admitting a batch of the given wire size
// would breach a bound. The byte bound never blocks an empty queue:
// an oversized batch is admitted alone rather than wedging forever.
func (q *Queue) fullLocked(size int64) bool {
	if len(q.items) >= q.cfg.Capacity {
		return true
	}
	return q.cfg.MaxBytes > 0 && len(q.items) > 0 && q.bytes+size > q.cfg.MaxBytes
}

// Put admits one batch, applying SLO pressure, granularity growth and
// then the admission policy when the queue is full. Returns ErrShed
// when the batch was dropped, ErrQueueClosed after Close.
func (q *Queue) Put(batch []graph.Update) error {
	size := batchBytes(batch)
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.closed {
			return ErrQueueClosed
		}
		switch level := q.cfg.SLO.Level(); {
		case level >= PressureShed && len(q.items) > 0:
			// Shedding posture: refuse new work while a backlog exists.
			q.stats.Shed++
			q.stats.ShedSLO++
			return fmt.Errorf("%w (SLO pressure)", ErrShed)
		case level >= PressureCoalesce && 2*len(q.items) >= q.cfg.Capacity:
			// Coalescing posture: merge before the queue fills, not after.
			if q.coalesceLocked() {
				q.stats.CoalescedSLO++
			}
		}
		if !q.fullLocked(size) {
			q.items = append(q.items, batch)
			q.bytes += size
			q.stats.Admitted++
			if len(q.items) > q.stats.MaxDepth {
				q.stats.MaxDepth = len(q.items)
			}
			q.notEmpty.Signal()
			return nil
		}
		if q.coalesceLocked() {
			continue // a slot opened by merging; admit on the next pass
		}
		if q.cfg.Policy == AdmitShed {
			q.stats.Shed++
			return ErrShed
		}
		q.notFull.Wait()
	}
}

// coalesceLocked merges the two oldest queued batches when the result
// respects MaxBatchUpdates, freeing one slot. Oldest first: the oldest
// work degrades to coarser granularity while fresh batches stay sharp.
func (q *Queue) coalesceLocked() bool {
	if len(q.items) < 2 {
		return false
	}
	max := q.cfg.MaxBatchUpdates
	if max > 0 && len(q.items[0])+len(q.items[1]) > max {
		return false
	}
	merged := stream.MergeBatches(q.items[0], q.items[1])
	q.bytes += batchBytes(merged) - batchBytes(q.items[0]) - batchBytes(q.items[1])
	q.items = append([][]graph.Update{merged}, q.items[2:]...)
	q.stats.Coalesced++
	return true
}

// Get removes the oldest batch, blocking while the queue is empty and
// open. After Close it drains the remaining batches and then returns
// ErrQueueClosed.
func (q *Queue) Get() ([]graph.Update, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if len(q.items) > 0 {
			batch := q.items[0]
			q.items = q.items[1:]
			q.bytes -= batchBytes(batch)
			q.notFull.Signal()
			return batch, nil
		}
		if q.closed {
			return nil, ErrQueueClosed
		}
		q.notEmpty.Wait()
	}
}

// Close stops admission and wakes every waiter. Queued batches remain
// drainable via Get.
func (q *Queue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.notFull.Broadcast()
	q.notEmpty.Broadcast()
}

// Len returns the current depth.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Bytes returns the wire bytes currently queued.
func (q *Queue) Bytes() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.bytes
}

// Stats returns the admission counters.
func (q *Queue) Stats() QueueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.stats
}
