package serve

import (
	"errors"
	"sync"

	"github.com/tdgraph/tdgraph/internal/graph"
	"github.com/tdgraph/tdgraph/internal/stream"
)

// AdmitPolicy selects what a full queue does with the next batch.
type AdmitPolicy int

const (
	// AdmitBlock applies backpressure: Put blocks until space opens
	// (after granularity growth is exhausted).
	AdmitBlock AdmitPolicy = iota
	// AdmitShed drops the incoming batch with ErrShed once granularity
	// growth is exhausted — availability over completeness.
	AdmitShed
)

// ParseAdmitPolicy maps a -admit flag value to a policy.
func ParseAdmitPolicy(s string) (AdmitPolicy, error) {
	switch s {
	case "", "block":
		return AdmitBlock, nil
	case "shed":
		return AdmitShed, nil
	}
	return 0, errors.New("serve: unknown admission policy " + s + " (block|shed)")
}

// ErrShed reports a batch dropped by admission control.
var ErrShed = errors.New("serve: batch shed by admission control")

// ErrQueueClosed reports an operation on a closed queue: Put after
// Close, or Get after Close once the queue has drained.
var ErrQueueClosed = errors.New("serve: ingest queue closed")

// QueueConfig bounds the ingest queue.
type QueueConfig struct {
	// Capacity is the maximum queued batches (default 16).
	Capacity int
	// Policy is what a full queue does (default AdmitBlock).
	Policy AdmitPolicy
	// MaxBatchUpdates caps a coalesced batch's size; merging two queued
	// batches frees a slot only while the result stays within it. 0 (the
	// default) means no cap: under sustained overload the two oldest
	// batches keep merging without limit.
	MaxBatchUpdates int
}

// QueueStats counts admission outcomes.
type QueueStats struct {
	Admitted  uint64 // batches accepted
	Shed      uint64 // batches dropped (AdmitShed)
	Coalesced uint64 // merges performed to absorb overload
	MaxDepth  int    // high-water mark of queued batches
}

// Queue is the bounded buffer between sources and the durable
// pipeline. Under overload it first grows batch granularity — the two
// oldest queued batches merge into one, trading incremental-processing
// efficiency for queue space — and only when no merge is possible does
// the admission policy decide between blocking and shedding. Safe for
// one producer and one consumer (or several of each).
type Queue struct {
	mu       sync.Mutex
	notFull  *sync.Cond
	notEmpty *sync.Cond
	items    [][]graph.Update
	cfg      QueueConfig
	closed   bool
	stats    QueueStats
}

// NewQueue returns an open queue.
func NewQueue(cfg QueueConfig) *Queue {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 16
	}
	q := &Queue{cfg: cfg}
	q.notFull = sync.NewCond(&q.mu)
	q.notEmpty = sync.NewCond(&q.mu)
	return q
}

// Put admits one batch, applying granularity growth and then the
// admission policy when the queue is full. Returns ErrShed when the
// batch was dropped, ErrQueueClosed after Close.
func (q *Queue) Put(batch []graph.Update) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.closed {
			return ErrQueueClosed
		}
		if len(q.items) < q.cfg.Capacity {
			q.items = append(q.items, batch)
			q.stats.Admitted++
			if len(q.items) > q.stats.MaxDepth {
				q.stats.MaxDepth = len(q.items)
			}
			q.notEmpty.Signal()
			return nil
		}
		if q.coalesceLocked() {
			continue // a slot opened by merging; admit on the next pass
		}
		if q.cfg.Policy == AdmitShed {
			q.stats.Shed++
			return ErrShed
		}
		q.notFull.Wait()
	}
}

// coalesceLocked merges the two oldest queued batches when the result
// respects MaxBatchUpdates, freeing one slot. Oldest first: the oldest
// work degrades to coarser granularity while fresh batches stay sharp.
func (q *Queue) coalesceLocked() bool {
	if len(q.items) < 2 {
		return false
	}
	max := q.cfg.MaxBatchUpdates
	if max > 0 && len(q.items[0])+len(q.items[1]) > max {
		return false
	}
	merged := stream.MergeBatches(q.items[0], q.items[1])
	q.items = append([][]graph.Update{merged}, q.items[2:]...)
	q.stats.Coalesced++
	return true
}

// Get removes the oldest batch, blocking while the queue is empty and
// open. After Close it drains the remaining batches and then returns
// ErrQueueClosed.
func (q *Queue) Get() ([]graph.Update, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if len(q.items) > 0 {
			batch := q.items[0]
			q.items = q.items[1:]
			q.notFull.Signal()
			return batch, nil
		}
		if q.closed {
			return nil, ErrQueueClosed
		}
		q.notEmpty.Wait()
	}
}

// Close stops admission and wakes every waiter. Queued batches remain
// drainable via Get.
func (q *Queue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.notFull.Broadcast()
	q.notEmpty.Broadcast()
}

// Len returns the current depth.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Stats returns the admission counters.
func (q *Queue) Stats() QueueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.stats
}
