package replica

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"time"

	"github.com/tdgraph/tdgraph/internal/graph"
	"github.com/tdgraph/tdgraph/internal/serve"
	"github.com/tdgraph/tdgraph/internal/wal"
)

// ErrNotLeader reports a submission refused by a node that is not the
// cluster's leader. The refusal usually carries a redirect hint; when
// it does, the error is a *RedirectError wrapping this sentinel, so
// errors.Is(err, ErrNotLeader) is the one check and errors.As recovers
// the address.
var ErrNotLeader = errors.New("replica: not the leader")

// RedirectError is a not-the-leader refusal carrying the refusing
// node's best guess at the current leader's address — empty when it
// has none (mid-election, or a cluster that never had a leader). It
// wraps ErrNotLeader.
type RedirectError struct {
	Leader string
}

func (e *RedirectError) Error() string {
	if e.Leader == "" {
		return "replica: not the leader (no leader known)"
	}
	return "replica: not the leader (try " + e.Leader + ")"
}

func (e *RedirectError) Unwrap() error { return ErrNotLeader }

// BusyError is a backpressure refusal from the leader itself: the node
// leads the cluster but will not take this batch right now. Reason is
// the wire marker without its bang — "disk" (read-only under disk
// pressure) or "slo" (admission control shedding) — and RetryAfter the
// leader's hint for when to try again. It unwraps to the serve-layer
// sentinel matching its reason so callers keep one errors.Is check,
// and exposes the hint through RetryAfterHint for the retry layer's
// backoff floor.
type BusyError struct {
	Reason     string
	RetryAfter time.Duration
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("replica: leader busy (%s), retry after %v", e.Reason, e.RetryAfter)
}

func (e *BusyError) Unwrap() error {
	switch e.Reason {
	case "disk":
		return serve.ErrDiskPressure
	case "slo":
		return serve.ErrShed
	}
	return nil
}

// RetryAfterHint implements the serve retry layer's backoff floor.
func (e *BusyError) RetryAfterHint() time.Duration { return e.RetryAfter }

// ClientConfig parameterises a failover-aware ingestion client.
type ClientConfig struct {
	// Nodes are cluster addresses to try, in order; redirects learned
	// from Reject frames take precedence over rotation.
	Nodes []string
	// Dial opens a connection to a node address.
	Dial func(addr string) (net.Conn, error)
	// AckTimeout bounds one hello or submit round trip (default 5s).
	AckTimeout time.Duration
	// BatchDeadline, when positive, is each submission attempt's time
	// budget: it travels in the Submit frame as remaining milliseconds
	// so the leader can stop waiting on a stalled quorum, and it bounds
	// the client's own round-trip wait (a local expiry surfaces
	// *serve.DeadlineError at stage "submit"). 0 means no deadline —
	// attempts are bounded only by AckTimeout.
	BatchDeadline time.Duration
	// MaxAttempts bounds tries per batch across reconnects and
	// redirects (default 8, the RetrySource default). Exhaustion
	// surfaces serve.ErrSourceGivenUp wrapping the last failure.
	MaxAttempts int
	// Seed feeds the retry backoff jitter.
	Seed int64
	// Backoff overrides the retry backoff schedule (nil = the serve
	// defaults, seeded from Seed).
	Backoff *serve.Backoff
	// Breaker overrides the retry circuit breaker (nil = the serve
	// defaults). Failover makes refusals routine, so deployments with
	// tight latency budgets want a shorter reset than the default 5s.
	Breaker *serve.Breaker
	// Clock supplies waits and I/O deadlines (default real time).
	Clock serve.Clock
	// OnEvent receives one line per notable event (nil discards).
	OnEvent func(string)
}

// Client submits update batches to whichever node currently leads the
// cluster, following redirect hints and retrying with bounded backoff
// when leadership moves. It assumes the single-writer contract the
// serve layer already has: this client is the only ingest source, so
// its 1-based batch indices coincide with the cluster's WAL sequences
// and the leader's durable sequence says exactly which batches are
// acknowledged. That is what makes failover exactly-once: after a
// reconnect the Welcome (or any ack) tells the client which prefix is
// durable, already-durable submissions are re-acked without
// re-applying, and everything after the prefix is safe to resubmit.
// Not safe for concurrent use.
type Client struct {
	cfg   ClientConfig
	conn  net.Conn
	addr  string // address currently believed to lead ("" = rotate)
	next  int    // rotation cursor into cfg.Nodes
	acked uint64 // highest durable sequence the cluster confirmed
}

// NewClient returns a client over the given cluster addresses.
func NewClient(cfg ClientConfig) (*Client, error) {
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("replica: client needs at least one node address")
	}
	if cfg.Dial == nil {
		return nil, errors.New("replica: client needs a dialer")
	}
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = 5 * time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = serve.RealClock{}
	}
	if cfg.OnEvent == nil {
		cfg.OnEvent = func(string) {}
	}
	return &Client{cfg: cfg}, nil
}

// Acked returns the highest batch index the cluster has acknowledged
// as quorum-durable.
func (c *Client) Acked() uint64 { return c.acked }

// Run submits every batch in order and returns once all are
// quorum-durable on the cluster. Failures — dead nodes, severed
// connections, leadership changes — are retried through
// serve.RetrySource with its exponential backoff, jitter and breaker;
// a batch that exhausts the attempt budget surfaces
// serve.ErrSourceGivenUp wrapping the final cause. Batches the cluster
// already holds (a rerun after a partial failure) are skipped, not
// re-applied.
func (c *Client) Run(ctx context.Context, batches [][]graph.Update) error {
	i := 0
	submitNext := serve.FuncSource(func(ctx context.Context) ([]graph.Update, error) {
		for i < len(batches) && uint64(i+1) <= c.acked {
			i++ // already durable: confirmed by a Welcome or an ack
		}
		if i >= len(batches) {
			return nil, io.EOF
		}
		if err := c.submit(ctx, uint64(i+1), batches[i]); err != nil {
			return nil, err
		}
		b := batches[i]
		i++
		return b, nil
	})
	src := serve.NewRetrySource(submitNext, c.cfg.Backoff, c.cfg.Breaker, c.cfg.Clock, c.cfg.Seed)
	if c.cfg.MaxAttempts > 0 {
		src.MaxAttempts = c.cfg.MaxAttempts
	}
	defer c.dropConn()
	for {
		if _, err := src.Next(ctx); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
	}
}

// submit makes batch idx durable on the cluster: connect (following
// any redirect learned so far), skip if the handshake shows it already
// durable, otherwise one Submit/Ack round trip. Every failure path
// leaves the client aimed at its best guess of the leader and returns
// the error for the retry layer to absorb.
func (c *Client) submit(ctx context.Context, idx uint64, batch []graph.Update) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if c.conn == nil {
		if err := c.connect(); err != nil {
			return err
		}
	}
	if idx <= c.acked {
		return nil // the handshake revealed it durable; nothing to send
	}
	fr := Frame{Type: FrameSubmit, Seq: idx, Payload: wal.EncodeBatch(batch)}
	wait := c.cfg.AckTimeout
	deadlineBound := false
	if d := c.cfg.BatchDeadline; d > 0 {
		fr.Orig = deadlineMillis(d)
		if d < wait {
			wait, deadlineBound = d, true
		}
	}
	c.conn.SetDeadline(c.cfg.Clock.Now().Add(wait))
	err := WriteFrame(c.conn, fr)
	var ans Frame
	if err == nil {
		ans, err = ReadFrame(c.conn)
	}
	c.conn.SetDeadline(time.Time{})
	if err != nil {
		c.dropConn() // reconnect decides whether the node is still there
		if deadlineBound && isTimeout(err) {
			// The batch deadline, not the transport, was the binding
			// bound: surface the typed expiry so callers can tell a
			// blown budget from a dead leader.
			return fmt.Errorf("replica: client: batch %d deadline (%v) expired in flight: %w",
				idx, c.cfg.BatchDeadline, serve.NewDeadlineError("submit"))
		}
		return err
	}
	switch ans.Type {
	case FrameAck:
		if ans.Seq > c.acked {
			c.acked = ans.Seq
		}
		if c.acked >= idx {
			return nil
		}
		return fmt.Errorf("replica: client: ack at seq %d below submitted %d", ans.Seq, idx)
	case FrameReject:
		if ans.Orig > 0 {
			return c.busy(ans, idx)
		}
		return c.redirect(ans, "submit")
	default:
		c.dropConn()
		return &FrameError{Reason: "submit answer",
			Err: fmt.Errorf("%w: unexpected frame type %d", ErrBadFrame, ans.Type)}
	}
}

// connect dials the current leader guess (or the next node in
// rotation), performs the ClientHello handshake, and adopts the
// durable sequence the Welcome reports.
func (c *Client) connect() error {
	addr := c.addr
	if addr == "" {
		addr = c.cfg.Nodes[c.next%len(c.cfg.Nodes)]
		c.next++
	}
	conn, err := c.cfg.Dial(addr)
	if err != nil {
		c.addr = "" // dead node: rotate on the next attempt
		return err
	}
	conn.SetDeadline(c.cfg.Clock.Now().Add(c.cfg.AckTimeout))
	werr := WriteFrame(conn, Frame{Type: FrameClientHello})
	var ans Frame
	if werr == nil {
		ans, werr = ReadFrame(conn)
	}
	conn.SetDeadline(time.Time{})
	if werr != nil {
		conn.Close()
		c.addr = ""
		return werr
	}
	c.conn, c.addr = conn, addr
	switch ans.Type {
	case FrameWelcome:
		if ans.Seq > c.acked {
			c.acked = ans.Seq
		}
		c.cfg.OnEvent(fmt.Sprintf("attached to leader %s at seq %d", addr, ans.Seq))
		return nil
	case FrameReject:
		return c.redirect(ans, "hello")
	default:
		c.dropConn()
		return &FrameError{Reason: "hello answer",
			Err: fmt.Errorf("%w: unexpected frame type %d", ErrBadFrame, ans.Type)}
	}
}

// busy consumes a backpressure Reject (Orig > 0): the node leads the
// cluster but refuses this batch. The session stays open — the leader
// is healthy and the refusal is about load, not leadership — and Seq
// still carries the durable sequence, so adopt it to avoid
// resubmitting batches the cluster already holds. The typed error
// carries the leader's retry-after hint, which the retry layer floors
// its backoff at.
func (c *Client) busy(ans Frame, idx uint64) error {
	if ans.Seq > c.acked {
		c.acked = ans.Seq
	}
	after := time.Duration(ans.Orig) * time.Millisecond
	marker := string(ans.Payload)
	var err error
	switch {
	case strings.HasPrefix(marker, "!deadline:"):
		err = serve.NewDeadlineError(strings.TrimPrefix(marker, "!deadline:"))
	default:
		// "!disk", "!slo", and whatever a newer server invents: a
		// generic busy refusal whose reason is the marker sans bang.
		err = &BusyError{Reason: strings.TrimPrefix(marker, "!"), RetryAfter: after}
	}
	c.cfg.OnEvent(fmt.Sprintf("batch %d refused by %s: %v", idx, c.addr, err))
	return err
}

// deadlineMillis encodes a remaining time budget as whole milliseconds
// for the Submit frame, rounding sub-millisecond budgets up to 1 so a
// tiny deadline still travels (0 on the wire means no deadline).
func deadlineMillis(d time.Duration) uint64 {
	ms := uint64(d / time.Millisecond)
	if ms == 0 {
		ms = 1
	}
	return ms
}

// isTimeout reports whether err is an I/O deadline expiry rather than
// a transport failure.
func isTimeout(err error) bool {
	if errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// redirect consumes a Reject frame: aim at the hinted leader when the
// refusing node knows one, otherwise fall back to rotation, and report
// the refusal as a *RedirectError for the retry layer.
func (c *Client) redirect(ans Frame, stage string) error {
	was := c.addr
	c.dropConn()
	hint := string(ans.Payload)
	if hint != "" && hint != was {
		c.addr = hint
	} else {
		c.addr = ""
	}
	rerr := &RedirectError{Leader: hint}
	c.cfg.OnEvent(fmt.Sprintf("%s refused by %s: %v", stage, was, rerr))
	return rerr
}

// dropConn closes and forgets the current connection, keeping the
// current leader guess.
func (c *Client) dropConn() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}
