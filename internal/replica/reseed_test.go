package replica

import (
	"bytes"
	"errors"
	"hash/crc32"
	"net"
	"os"
	"path/filepath"
	"testing"

	"github.com/tdgraph/tdgraph/internal/serve"
	"github.com/tdgraph/tdgraph/internal/stats"
	"github.com/tdgraph/tdgraph/internal/stream"
	"github.com/tdgraph/tdgraph/internal/wal"
)

// makeSnapshot builds a throwaway pipeline, ingests the first n batches,
// and returns its newest checkpoint generation — the covered sequence,
// the sidecar payload, the raw TDS2 bytes, and the states the snapshot
// encodes (what a correct install must reproduce).
func makeSnapshot(t *testing.T, w *stream.Workload, n int) (uint64, []byte, []byte, []float64) {
	t.Helper()
	cfg := nodeConfig(w, t.TempDir())
	pipe, err := serve.NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range w.Batches[:n] {
		if err := pipe.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	states := append([]float64(nil), pipe.Session().States()...)
	if err := pipe.Close(); err != nil { // the final checkpoint covers seq n
		t.Fatal(err)
	}
	seq, meta, data, err := serve.NewSnapshotSource(cfg.CheckpointPath, 0).NewestSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if seq != uint64(n) {
		t.Fatalf("snapshot covers seq %d, want %d", seq, n)
	}
	return seq, meta, data, states
}

// handshake opens a raw primary-side session against fl: Hello at term,
// Welcome back. The test then speaks frames by hand.
func handshake(t *testing.T, fl *Follower, term uint64) (net.Conn, chan error) {
	t.Helper()
	pside, fside := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- fl.Serve(fside) }()
	if err := WriteFrame(pside, Frame{Type: FrameHello, Term: term}); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFrame(pside)
	if err != nil || f.Type != FrameWelcome {
		t.Fatalf("welcome: %+v, %v", f, err)
	}
	return pside, done
}

func mustAck(t *testing.T, conn net.Conn, wantSeq uint64, what string) {
	t.Helper()
	f, err := ReadFrame(conn)
	if err != nil || f.Type != FrameAck || f.Seq != wantSeq {
		t.Fatalf("%s: got %+v (err %v), want Ack seq %d", what, f, err, wantSeq)
	}
}

func mustReject(t *testing.T, conn net.Conn, what string) {
	t.Helper()
	f, err := ReadFrame(conn)
	if err != nil || f.Type != FrameReject {
		t.Fatalf("%s: got %+v (err %v), want Reject", what, f, err)
	}
}

// TestSnapOfferCodec pins the offer payload format: a byte-identical
// round trip for every shape, and typed *FrameError/ErrBadFrame
// failures for malformed payloads.
func TestSnapOfferCodec(t *testing.T) {
	for _, o := range []snapOffer{
		{},
		{Total: 1 << 30, CRC: 0xDEADBEEF},
		{Total: 7, CRC: 3, Meta: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
		{Total: 9, Ledger: []TermBase{{Term: 1, Base: 1}, {Term: 4, Base: 77}}},
		{Total: 12, CRC: 1, Meta: []byte{0}, Ledger: []TermBase{{Term: 2, Base: 5}}},
	} {
		enc := o.encode()
		got, err := decodeSnapOffer(enc)
		if err != nil {
			t.Fatalf("decode(%+v): %v", o, err)
		}
		if !bytes.Equal(got.encode(), enc) {
			t.Fatalf("round trip not byte-identical for %+v", o)
		}
		if got.Total != o.Total || got.CRC != o.CRC || !bytes.Equal(got.Meta, o.Meta) || len(got.Ledger) != len(o.Ledger) {
			t.Fatalf("round trip changed fields: %+v -> %+v", o, got)
		}
	}

	full := snapOffer{Total: 5, CRC: 9, Meta: []byte{1, 2}, Ledger: []TermBase{{Term: 1, Base: 1}}}.encode()
	for name, payload := range map[string][]byte{
		"empty":            nil,
		"truncated header": full[:10],
		"truncated meta":   full[:15],
		"truncated ledger": full[:len(full)-1],
		"trailing slack":   append(append([]byte(nil), full...), 0),
	} {
		_, err := decodeSnapOffer(payload)
		var fe *FrameError
		if !errors.As(err, &fe) || !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: want *FrameError wrapping ErrBadFrame, got %v", name, err)
		}
	}
}

// TestReseedMarkCodec: the resume mark round-trips, and any damage —
// wrong size, flipped bytes, wrong magic — reads as "no mark" rather
// than a bogus resume offset.
func TestReseedMarkCodec(t *testing.T) {
	fl := &Follower{fs: wal.OSFS{}, dir: t.TempDir()}
	offer := snapOffer{Total: 4096, CRC: 0xABCD1234}
	if err := fl.writeReseedMark(42, offer); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(fl.dir, reseedMarkName))
	if err != nil {
		t.Fatal(err)
	}
	seq, total, crc, ok := decodeReseedMark(raw)
	if !ok || seq != 42 || total != 4096 || crc != 0xABCD1234 {
		t.Fatalf("mark round trip: seq=%d total=%d crc=%08x ok=%v", seq, total, crc, ok)
	}
	for name, data := range map[string][]byte{
		"short":     raw[:reseedMarkSize-1],
		"long":      append(append([]byte(nil), raw...), 0),
		"bit flip":  flipByte(raw, 6),
		"bad magic": flipByte(raw, 0),
	} {
		if _, _, _, ok := decodeReseedMark(data); ok {
			t.Errorf("%s: corrupt mark decoded as valid", name)
		}
	}
}

func flipByte(b []byte, i int) []byte {
	out := append([]byte(nil), b...)
	out[i] ^= 0xFF
	return out
}

// feedFollower replicates batches[from:to] of w into fl by hand under
// term, building a follower log (and term ledger) without a pipeline.
func feedFollower(t *testing.T, fl *Follower, w *stream.Workload, term uint64, from, to int) {
	t.Helper()
	pside, done := handshake(t, fl, term)
	for i := from; i < to; i++ {
		seq := uint64(i + 1)
		if err := WriteFrame(pside, Frame{Type: FrameRecord, Term: term, Seq: seq, Orig: term,
			Payload: wal.EncodeBatch(w.Batches[i])}); err != nil {
			t.Fatal(err)
		}
		mustAck(t, pside, seq, "record")
	}
	pside.Close()
	if err := <-done; err != nil {
		t.Fatalf("feed session: %v", err)
	}
}

// TestDivergedFollowerAutoReseeded: where PR 4's primary could only
// refuse a diverged replica, one with a SnapshotSource ships its newest
// checkpoint at the handshake, the follower installs it and resets its
// ledger to the shipped history, and ordinary catch-up finishes the
// job — ending with states Float64bits-identical to the reference.
func TestDivergedFollowerAutoReseeded(t *testing.T) {
	w := testWorkload(t, 10)
	want := referenceStates(t, w)

	// Follower A lives a first life under term 1: all ten batches.
	adir := t.TempDir()
	fa, err := NewFollower(FollowerConfig{Pipeline: nodeConfig(w, adir)})
	if err != nil {
		t.Fatal(err)
	}
	feedFollower(t, fa, w, 1, 0, 10)
	if fa.Seq() != 10 {
		t.Fatalf("fed follower at seq %d, want 10", fa.Seq())
	}

	// A new primary at term 2 has its own, shorter history — five
	// batches, checkpointed — so A's log is ahead of its end: diverged.
	pdir := t.TempDir()
	col := stats.NewCollector()
	pcfg := nodeConfig(w, pdir)
	pcfg.Collector = col
	if _, err := ClaimTerm(wal.Options{Dir: pdir}, 2); err != nil {
		t.Fatal(err)
	}
	pipe, err := serve.NewPipeline(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range w.Batches[:5] {
		if err := pipe.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	prim := NewPrimary(PrimaryConfig{
		Term: 2, ClusterSize: 2, WAL: pcfg.WAL, Collector: col,
		Snapshots: pipe.SnapshotSource(), SnapChunkBytes: 64,
	})
	na := attach(t, prim, fa, nil) // auto-reseed happens inside AddFollower
	if prim.Followers() != 1 {
		t.Fatalf("reseeded follower not attached (%d followers)", prim.Followers())
	}
	// The newest checkpoint covered seq 3 (CheckpointEvery=3, 5 ingests);
	// attach installs it and then ships the remaining log in the same
	// breath, so A surfaces already caught up to the primary's end. The
	// chunk counters below prove the prefix travelled as a snapshot, not
	// replayed records.
	if fa.Seq() != 5 {
		t.Fatalf("follower at seq %d after attach, want 5", fa.Seq())
	}

	pipe.SetReplicator(prim)
	for _, b := range w.Batches[5:] {
		if err := pipe.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := pipe.Close(); err != nil {
		t.Fatal(err)
	}
	prim.Close()
	if err := <-na.done; err != nil {
		t.Fatalf("follower session: %v", err)
	}

	if fa.Seq() != 10 {
		t.Fatalf("follower finished at seq %d, want 10", fa.Seq())
	}
	if !statesEqual(fa.Pipeline().Session().States(), want) {
		t.Fatal("reseeded follower states diverged from reference")
	}
	if got := col.Get(stats.CtrReplReseedOffers); got != 1 {
		t.Fatalf("offers = %d, want 1", got)
	}
	if col.Get(stats.CtrReplReseedChunks) < 2 {
		t.Fatalf("chunks = %d, want >=2 (64-byte chunks)", col.Get(stats.CtrReplReseedChunks))
	}
	if col.Get(stats.CtrReplReseedAborts) != 0 || col.Get(stats.CtrReplReseedResumes) != 0 {
		t.Fatalf("aborts=%d resumes=%d, want 0/0", col.Get(stats.CtrReplReseedAborts), col.Get(stats.CtrReplReseedResumes))
	}
	fcol := fa.Pipeline().Collector()
	if fcol.Get(stats.CtrReplReseedInstalls) != 1 {
		t.Fatalf("follower installs = %d, want 1", fcol.Get(stats.CtrReplReseedInstalls))
	}
	// No transfer litter survives a completed install.
	for _, name := range []string{reseedPartialName, reseedMarkName} {
		if _, err := os.Stat(filepath.Join(adir, name)); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("%s left behind after install (err %v)", name, err)
		}
	}
	fa.Pipeline().Close()
}

// TestLateJoinerReseededPastRetention: a fresh follower joining after
// retention has discarded the head of the log is shipped a checkpoint
// at attach time (reseedIfCompacted) and then catches up from the log —
// the loop that lets retention advance at all in replicated mode.
func TestLateJoinerReseededPastRetention(t *testing.T) {
	w := testWorkload(t, 10)
	want := referenceStates(t, w)

	pdir := t.TempDir()
	col := stats.NewCollector()
	pcfg := nodeConfig(w, pdir)
	pcfg.Collector = col
	pcfg.WAL.SegmentBytes = 512 // rotate every record or two
	if _, err := ClaimTerm(wal.Options{Dir: pdir}, 1); err != nil {
		t.Fatal(err)
	}
	pipe, err := serve.NewPipeline(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range w.Batches[:8] {
		if err := pipe.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	start, err := wal.StartSeq(pcfg.WAL)
	if err != nil {
		t.Fatal(err)
	}
	if start <= 1 {
		t.Fatalf("retention never advanced (StartSeq %d); the test needs a truncated log", start)
	}

	prim := NewPrimary(PrimaryConfig{
		Term: 1, ClusterSize: 2, WAL: pcfg.WAL, Collector: col,
		Snapshots: pipe.SnapshotSource(), SnapChunkBytes: 128,
	})
	fb, cb, db := startFollower(t, w, t.TempDir())
	if err := prim.AddFollower(cb); err != nil {
		t.Fatalf("late joiner past retention: %v", err)
	}
	// Newest checkpoint covers seq 6 (every 3, 8 ingests); the joiner
	// installs it and attach-time catch-up serves 7..8 from the log, so
	// it is acknowledged at the primary's end before any new traffic.
	if got := prim.Acked(); len(got) != 1 || got[0] != 8 {
		t.Fatalf("acked after reseed = %v, want [8]", got)
	}

	pipe.SetReplicator(prim)
	for _, b := range w.Batches[8:] {
		if err := pipe.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := pipe.Close(); err != nil {
		t.Fatal(err)
	}
	prim.Close()
	if err := <-db; err != nil {
		t.Fatalf("follower session: %v", err)
	}

	if fb.Seq() != 10 {
		t.Fatalf("late joiner finished at seq %d, want 10", fb.Seq())
	}
	if !statesEqual(fb.Pipeline().Session().States(), want) {
		t.Fatal("late joiner states diverged from reference")
	}
	if col.Get(stats.CtrReplReseedOffers) != 1 {
		t.Fatalf("offers = %d, want 1", col.Get(stats.CtrReplReseedOffers))
	}
	// Records 7 and 8 came from the log after the install.
	if got := col.Get(stats.CtrReplCatchupRecords); got != 2 {
		t.Fatalf("catch-up records = %d, want 2", got)
	}
	fb.Pipeline().Close()
}

// stubSnap is a SnapshotSource returning fixed bytes (or an error).
type stubSnap struct {
	seq  uint64
	meta []byte
	data []byte
	err  error
}

func (s stubSnap) NewestSnapshot() (uint64, []byte, []byte, error) {
	return s.seq, s.meta, s.data, s.err
}

// TestReseedRefusedWithoutCheckpointPath: a follower that cannot
// install (no checkpoint path) refuses the offer; both sides count an
// abort and surface ErrReseedAborted.
func TestReseedRefusedWithoutCheckpointPath(t *testing.T) {
	w := testWorkload(t, 4)
	cfg := nodeConfig(w, t.TempDir())
	cfg.CheckpointPath = "" // cannot install
	fl, err := NewFollower(FollowerConfig{Pipeline: cfg})
	if err != nil {
		t.Fatal(err)
	}
	pside, done := handshake(t, fl, 1)

	col := stats.NewCollector()
	p := NewPrimary(PrimaryConfig{
		Term: 1, WAL: wal.Options{Dir: t.TempDir()}, Collector: col,
		Snapshots: stubSnap{seq: 3, meta: make([]byte, 8), data: []byte("snapshot bytes")},
	})
	fc := &followerConn{conn: pside, name: "f0"}
	_, rerr := p.reseed(fc)
	if !errors.Is(rerr, ErrReseedAborted) {
		t.Fatalf("primary: want ErrReseedAborted, got %v", rerr)
	}
	pside.Close()
	if serr := <-done; !errors.Is(serr, ErrReseedAborted) {
		t.Fatalf("follower session: want ErrReseedAborted, got %v", serr)
	}
	if col.Get(stats.CtrReplReseedAborts) != 1 {
		t.Fatalf("primary aborts = %d, want 1", col.Get(stats.CtrReplReseedAborts))
	}
	if fl.Pipeline().Collector().Get(stats.CtrReplReseedAborts) != 1 {
		t.Fatalf("follower aborts = %d, want 1", fl.Pipeline().Collector().Get(stats.CtrReplReseedAborts))
	}
	fl.Pipeline().Close()
}

// TestSnapshotTransferFaultTable drives the follower's transfer state
// machine with hand-written frames through every corruption class: a
// byte flipped in flight (whole-file checksum catches it, partial is
// discarded — no resume from poison), torn/overrunning/short chunk
// streams (typed aborts, resumable partial kept), structurally valid
// bytes that fail the TDS2 load, and a malformed offer payload.
func TestSnapshotTransferFaultTable(t *testing.T) {
	w := testWorkload(t, 6)
	snapSeq, meta, data, _ := makeSnapshot(t, w, 4)
	if len(data) < 64 {
		t.Fatalf("snapshot too small (%d bytes) to split into chunks", len(data))
	}
	half := uint64(len(data) / 2)

	junk := bytes.Repeat([]byte{0x5A, 0xA5, 0x00, 0xFF}, 64)

	offerFor := func(d []byte) snapOffer {
		return snapOffer{Total: uint64(len(d)), CRC: crc32.ChecksumIEEE(d), Meta: meta}
	}

	for _, tc := range []struct {
		name string
		run  func(t *testing.T, conn net.Conn)
		want error
		// partial+mark removed (poisoned) vs kept (resumable)
		discarded bool
	}{
		{
			name: "byte flipped in flight",
			run: func(t *testing.T, conn net.Conn) {
				offer := offerFor(data)
				WriteFrame(conn, Frame{Type: FrameSnapOffer, Term: 1, Seq: snapSeq, Payload: offer.encode()})
				mustAck(t, conn, 0, "offer answer")
				bad := append([]byte(nil), data[:half]...)
				bad[0] ^= 0x01
				WriteFrame(conn, Frame{Type: FrameSnapChunk, Term: 1, Seq: 0, Payload: bad})
				mustAck(t, conn, half, "chunk 1")
				WriteFrame(conn, Frame{Type: FrameSnapChunk, Term: 1, Seq: half, Payload: data[half:]})
				mustAck(t, conn, uint64(len(data)), "chunk 2")
				WriteFrame(conn, Frame{Type: FrameSnapDone, Term: 1, Seq: snapSeq})
				mustReject(t, conn, "checksum verdict")
			},
			want:      ErrSnapshotCorrupt,
			discarded: true,
		},
		{
			name: "torn chunk stream",
			run: func(t *testing.T, conn net.Conn) {
				offer := offerFor(data)
				WriteFrame(conn, Frame{Type: FrameSnapOffer, Term: 1, Seq: snapSeq, Payload: offer.encode()})
				mustAck(t, conn, 0, "offer answer")
				// A chunk that does not continue byte 0: bytes went missing.
				WriteFrame(conn, Frame{Type: FrameSnapChunk, Term: 1, Seq: half, Payload: data[half:]})
				mustReject(t, conn, "torn chunk verdict")
			},
			want: ErrReseedAborted,
		},
		{
			name: "chunk overruns the offered total",
			run: func(t *testing.T, conn net.Conn) {
				offer := offerFor(data[:half])
				WriteFrame(conn, Frame{Type: FrameSnapOffer, Term: 1, Seq: snapSeq, Payload: offer.encode()})
				mustAck(t, conn, 0, "offer answer")
				WriteFrame(conn, Frame{Type: FrameSnapChunk, Term: 1, Seq: 0, Payload: data})
				mustReject(t, conn, "overrun verdict")
			},
			want: ErrReseedAborted,
		},
		{
			name: "done before all bytes arrived",
			run: func(t *testing.T, conn net.Conn) {
				offer := offerFor(data)
				WriteFrame(conn, Frame{Type: FrameSnapOffer, Term: 1, Seq: snapSeq, Payload: offer.encode()})
				mustAck(t, conn, 0, "offer answer")
				WriteFrame(conn, Frame{Type: FrameSnapChunk, Term: 1, Seq: 0, Payload: data[:half]})
				mustAck(t, conn, half, "chunk 1")
				WriteFrame(conn, Frame{Type: FrameSnapDone, Term: 1, Seq: snapSeq})
				mustReject(t, conn, "short transfer verdict")
			},
			want: ErrReseedAborted,
		},
		{
			name: "valid checksum, unloadable bytes",
			run: func(t *testing.T, conn net.Conn) {
				offer := offerFor(junk)
				WriteFrame(conn, Frame{Type: FrameSnapOffer, Term: 1, Seq: snapSeq, Payload: offer.encode()})
				mustAck(t, conn, 0, "offer answer")
				WriteFrame(conn, Frame{Type: FrameSnapChunk, Term: 1, Seq: 0, Payload: junk})
				mustAck(t, conn, uint64(len(junk)), "chunk")
				WriteFrame(conn, Frame{Type: FrameSnapDone, Term: 1, Seq: snapSeq})
				mustReject(t, conn, "install verdict")
			},
			want:      ErrSnapshotCorrupt,
			discarded: true,
		},
		{
			name: "malformed offer payload",
			run: func(t *testing.T, conn net.Conn) {
				WriteFrame(conn, Frame{Type: FrameSnapOffer, Term: 1, Seq: snapSeq, Payload: []byte{1, 2, 3}})
				mustReject(t, conn, "offer verdict")
			},
			want: ErrBadFrame,
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			fl, err := NewFollower(FollowerConfig{Pipeline: nodeConfig(w, dir)})
			if err != nil {
				t.Fatal(err)
			}
			conn, done := handshake(t, fl, 1)
			tc.run(t, conn)
			conn.Close()
			if serr := <-done; !errors.Is(serr, tc.want) {
				t.Fatalf("session error = %v, want %v in chain", serr, tc.want)
			}
			// A failed transfer must never move the follower's state.
			if fl.Seq() != 0 {
				t.Fatalf("follower advanced to seq %d on a failed transfer", fl.Seq())
			}
			if tc.discarded {
				for _, name := range []string{reseedPartialName, reseedMarkName} {
					if _, err := os.Stat(filepath.Join(dir, name)); !errors.Is(err, os.ErrNotExist) {
						t.Errorf("poisoned %s kept for resume (err %v)", name, err)
					}
				}
			}
			fl.Pipeline().Close()
		})
	}
}

// TestReseedResumesAfterSeveredTransfer: a transfer cut mid-stream
// keeps its fsynced partial and resume mark; the next offer of the
// same snapshot restarts at the acknowledged byte offset — across a
// follower process restart — and installs bit-identical state.
func TestReseedResumesAfterSeveredTransfer(t *testing.T) {
	w := testWorkload(t, 6)
	snapSeq, meta, data, snapStates := makeSnapshot(t, w, 4)
	if len(data) < 96 {
		t.Fatalf("snapshot too small (%d bytes)", len(data))
	}
	offer := snapOffer{Total: uint64(len(data)), CRC: crc32.ChecksumIEEE(data),
		Meta: meta, Ledger: []TermBase{{Term: 1, Base: 1}}}
	cut := uint64(64)

	dir := t.TempDir()
	fl, err := NewFollower(FollowerConfig{Pipeline: nodeConfig(w, dir)})
	if err != nil {
		t.Fatal(err)
	}

	// Session 1: one chunk lands, then the primary dies.
	conn, done := handshake(t, fl, 1)
	WriteFrame(conn, Frame{Type: FrameSnapOffer, Term: 1, Seq: snapSeq, Payload: offer.encode()})
	mustAck(t, conn, 0, "fresh offer answer")
	WriteFrame(conn, Frame{Type: FrameSnapChunk, Term: 1, Seq: 0, Payload: data[:cut]})
	mustAck(t, conn, cut, "chunk 1")
	conn.Close()
	if serr := <-done; !errors.Is(serr, ErrReseedAborted) {
		t.Fatalf("severed session: want ErrReseedAborted, got %v", serr)
	}
	if st, err := os.Stat(filepath.Join(dir, reseedPartialName)); err != nil || st.Size() != int64(cut) {
		t.Fatalf("partial after sever: %v (size %v), want %d bytes", err, st, cut)
	}

	// The follower crashes and restarts: the partial and mark are
	// durable, the old pipeline state is untouched (no half-install).
	fl.Pipeline().Close()
	fl, err = NewFollower(FollowerConfig{Pipeline: nodeConfig(w, dir)})
	if err != nil {
		t.Fatalf("restart after severed transfer: %v", err)
	}
	if fl.Seq() != 0 {
		t.Fatalf("restarted follower at seq %d, want its old 0", fl.Seq())
	}

	// Session 2: the same offer resumes at the acknowledged offset.
	conn, done = handshake(t, fl, 2)
	WriteFrame(conn, Frame{Type: FrameSnapOffer, Term: 2, Seq: snapSeq, Payload: offer.encode()})
	mustAck(t, conn, cut, "resumed offer answer")
	WriteFrame(conn, Frame{Type: FrameSnapChunk, Term: 2, Seq: cut, Payload: data[cut:]})
	mustAck(t, conn, uint64(len(data)), "resumed chunk")
	WriteFrame(conn, Frame{Type: FrameSnapDone, Term: 2, Seq: snapSeq})
	mustAck(t, conn, snapSeq, "install")
	conn.Close()
	if serr := <-done; serr != nil {
		t.Fatalf("resume session: %v", serr)
	}

	if fl.Seq() != snapSeq {
		t.Fatalf("follower at seq %d after install, want %d", fl.Seq(), snapSeq)
	}
	if !statesEqual(fl.Pipeline().Session().States(), snapStates) {
		t.Fatal("installed states differ from the snapshot's")
	}
	if len(fl.state.Ledger) != 1 || fl.state.Ledger[0] != (TermBase{Term: 1, Base: 1}) {
		t.Fatalf("ledger not reset to the shipped history: %+v", fl.state.Ledger)
	}
	col := fl.Pipeline().Collector()
	if col.Get(stats.CtrReplReseedResumes) != 1 || col.Get(stats.CtrReplReseedInstalls) != 1 {
		t.Fatalf("resumes=%d installs=%d, want 1/1",
			col.Get(stats.CtrReplReseedResumes), col.Get(stats.CtrReplReseedInstalls))
	}
	// A durable install survives another restart.
	fl.Pipeline().Close()
	fl, err = NewFollower(FollowerConfig{Pipeline: nodeConfig(w, dir)})
	if err != nil {
		t.Fatal(err)
	}
	if fl.Seq() != snapSeq || !statesEqual(fl.Pipeline().Session().States(), snapStates) {
		t.Fatal("installed snapshot did not survive a restart")
	}
	fl.Pipeline().Close()
}

// FuzzSnapFrame fuzzes the snapshot-offer codec: every input either
// decodes and re-encodes byte-identical, or fails with the typed
// *FrameError wrapping ErrBadFrame — never a panic, never a silent
// partial decode.
func FuzzSnapFrame(f *testing.F) {
	f.Add([]byte(nil))
	f.Add(snapOffer{}.encode())
	f.Add(snapOffer{Total: 1 << 20, CRC: 0xDEADBEEF, Meta: make([]byte, 8)}.encode())
	f.Add(snapOffer{Total: 9, Meta: []byte{1, 2, 3},
		Ledger: []TermBase{{Term: 1, Base: 1}, {Term: 3, Base: 500}}}.encode())
	full := snapOffer{Total: 5, CRC: 9, Meta: []byte{1, 2}, Ledger: []TermBase{{Term: 2, Base: 4}}}.encode()
	f.Add(full[:11])
	f.Add(append(append([]byte(nil), full...), 0xFF))
	f.Fuzz(func(t *testing.T, payload []byte) {
		o, err := decodeSnapOffer(payload)
		if err != nil {
			var fe *FrameError
			if !errors.As(err, &fe) || !errors.Is(err, ErrBadFrame) {
				t.Fatalf("malformed offer: want *FrameError wrapping ErrBadFrame, got %v", err)
			}
			return
		}
		if re := o.encode(); !bytes.Equal(re, payload) {
			t.Fatalf("accepted offer does not re-encode byte-identical:\n in:  %x\n out: %x", payload, re)
		}
	})
}
