package replica

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/tdgraph/tdgraph/internal/fault"
	"github.com/tdgraph/tdgraph/internal/serve"
	"github.com/tdgraph/tdgraph/internal/stats"
	"github.com/tdgraph/tdgraph/internal/stream"
)

// These trials are the hands-off counterpart of chaos_test.go: nobody
// calls Promote. Nodes run their own lease monitors and elections, the
// client chases the leader through redirect hints, and the tests only
// inject failures and assert the invariants at the end — no
// acknowledged batch lost, exactly one leader per term, deterministic
// converged state.

// chaosNet is an in-memory fabric for full Node clusters: per-source
// dialers so a member (or the client) can be isolated from everyone,
// per-target inbound wrappers for fault injection, and kill/sever that
// drops a member the way a crashed process drops its sockets.
type chaosNet struct {
	mu       sync.Mutex
	nodes    map[string]*Node
	gone     map[string]bool
	isolated map[string]bool
	wrapIn   map[string]func(net.Conn) net.Conn
	conns    map[string][]net.Conn
}

func newChaosNet() *chaosNet {
	return &chaosNet{
		nodes:    make(map[string]*Node),
		gone:     make(map[string]bool),
		isolated: make(map[string]bool),
		wrapIn:   make(map[string]func(net.Conn) net.Conn),
		conns:    make(map[string][]net.Conn),
	}
}

func (f *chaosNet) register(addr string, n *Node) {
	f.mu.Lock()
	f.nodes[addr] = n
	f.gone[addr] = false
	f.mu.Unlock()
}

// dialerFor returns the Dial function for one member: connections fail
// when either endpoint is isolated or the target is gone, and both
// ends are tracked so severing an address cuts every connection it
// touches.
func (f *chaosNet) dialerFor(src string) func(addr string) (net.Conn, error) {
	return func(addr string) (net.Conn, error) {
		f.mu.Lock()
		n := f.nodes[addr]
		bad := n == nil || f.gone[addr] || f.isolated[src] || f.isolated[addr]
		wrap := f.wrapIn[addr]
		f.mu.Unlock()
		if bad {
			return nil, fmt.Errorf("chaosnet: %s cannot reach %s", src, addr)
		}
		a, b := net.Pipe()
		server := net.Conn(b)
		if wrap != nil {
			server = wrap(server)
		}
		f.mu.Lock()
		f.conns[src] = append(f.conns[src], a)
		f.conns[addr] = append(f.conns[addr], a)
		f.mu.Unlock()
		go n.HandleConn(server)
		return a, nil
	}
}

// sever cuts every connection touching addr.
func (f *chaosNet) sever(addr string) {
	f.mu.Lock()
	cut := f.conns[addr]
	f.conns[addr] = nil
	f.mu.Unlock()
	for _, c := range cut {
		c.Close()
	}
}

// isolate partitions addr away from every other member (and back).
func (f *chaosNet) isolate(addr string, on bool) {
	f.mu.Lock()
	f.isolated[addr] = on
	f.mu.Unlock()
	if on {
		f.sever(addr)
	}
}

// kill marks addr dead and cuts its connections; register revives it.
func (f *chaosNet) kill(addr string) {
	f.mu.Lock()
	f.gone[addr] = true
	f.mu.Unlock()
	f.sever(addr)
}

// wrapInbound installs (or, with nil, removes) a fault wrapper applied
// to every new inbound connection to addr.
func (f *chaosNet) wrapInbound(addr string, wrap func(net.Conn) net.Conn) {
	f.mu.Lock()
	f.wrapIn[addr] = wrap
	f.mu.Unlock()
}

// electionLog records node events and indexes leadership claims so the
// one-leader-per-term invariant can be checked after a trial.
type electionLog struct {
	mu      sync.Mutex
	lines   []string
	elected map[uint64][]string
}

func newElectionLog() *electionLog {
	return &electionLog{elected: make(map[uint64][]string)}
}

func (e *electionLog) hook(addr string) func(string) {
	return func(s string) {
		e.mu.Lock()
		e.lines = append(e.lines, addr+": "+s)
		var term uint64
		if n, _ := fmt.Sscanf(s, "elected leader at term %d", &term); n == 1 {
			e.elected[term] = append(e.elected[term], addr)
		}
		e.mu.Unlock()
	}
}

func (e *electionLog) checkOneLeaderPerTerm(t *testing.T) {
	t.Helper()
	e.mu.Lock()
	defer e.mu.Unlock()
	for term, leaders := range e.elected {
		if len(leaders) > 1 {
			t.Errorf("term %d claimed by %d leaders: %v", term, len(leaders), leaders)
		}
	}
	if t.Failed() {
		for _, l := range e.lines {
			t.Log(l)
		}
	}
}

// liveNode is one running cluster member plus the handles to stop and
// restart it.
type liveNode struct {
	addr    string
	dir     string
	node    *Node
	cancel  context.CancelFunc
	done    chan error
	stopped bool
}

// startLiveNode builds and runs a Node over dir with fast real-clock
// timings: net.Pipe transports make round trips take microseconds, so
// millisecond leases keep whole failover stories inside a second while
// the digests stay schedule-independent.
func startLiveNode(t *testing.T, fabric *chaosNet, elog *electionLog, w *stream.Workload,
	addr, dir string, peers []string, seed int64) *liveNode {
	t.Helper()
	cfg := nodeConfig(w, dir)
	n, err := NewNode(NodeConfig{
		Addr:           addr,
		Peers:          peers,
		Dial:           fabric.dialerFor(addr),
		Pipeline:       cfg,
		HeartbeatEvery: 10 * time.Millisecond,
		LeaseTimeout:   40 * time.Millisecond,
		AckTimeout:     time.Second,
		Seed:           seed,
		OnEvent:        elog.hook(addr),
	})
	if err != nil {
		t.Fatalf("NewNode(%s): %v", addr, err)
	}
	fabric.register(addr, n)
	ctx, cancel := context.WithCancel(context.Background())
	ln := &liveNode{addr: addr, dir: dir, node: n, cancel: cancel, done: make(chan error, 1)}
	go func() { ln.done <- n.Run(ctx) }()
	return ln
}

// stop shuts the member down and waits for full quiescence: Run has
// returned and Node.Close has joined any in-flight replication session,
// so the member's states are safe to read afterwards. Idempotent, so
// trials can stop members explicitly before reading states and still
// leave the deferred cleanup in place.
func (ln *liveNode) stop() {
	if ln.stopped {
		return
	}
	ln.stopped = true
	ln.cancel()
	<-ln.done
	ln.node.Close()
}

// waitFor polls pred until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if pred() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func currentLeader(members []*liveNode) *liveNode {
	for _, m := range members {
		if m.node.Role() == RoleLeader {
			return m
		}
	}
	return nil
}

// throttleConn paces writes so a client feeding microsecond-fast pipes
// still has batches in flight when the trial injects its failure.
type throttleConn struct {
	net.Conn
	d time.Duration
}

func (c throttleConn) Write(p []byte) (int, error) {
	time.Sleep(c.d)
	return c.Conn.Write(p)
}

// chaosClient builds a failover client over the fabric with retry
// timings matched to the millisecond leases.
func chaosClient(t *testing.T, fabric *chaosNet, nodes []string, seed int64, pace time.Duration) *Client {
	t.Helper()
	dial := fabric.dialerFor("client")
	cl, err := NewClient(ClientConfig{
		Nodes: nodes,
		Dial: func(addr string) (net.Conn, error) {
			conn, err := dial(addr)
			if err != nil {
				return nil, err
			}
			return throttleConn{Conn: conn, d: pace}, nil
		},
		AckTimeout:  time.Second,
		MaxAttempts: 25,
		Seed:        seed,
		Backoff:     &serve.Backoff{Base: 2 * time.Millisecond, Max: 40 * time.Millisecond, Multiplier: 2},
		Breaker:     serve.NewBreaker(10, 50*time.Millisecond, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// handsOffDigest is everything a hands-off trial decided that must
// reproduce run to run. Which member wins the race is scheduling, so
// it is checked for legality (one leader per term) but not pinned;
// the converged data must be bit-identical regardless.
type handsOffDigest struct {
	acked     uint64
	height    uint64
	stateHash uint64
}

// runHandsOffTrial kills the leader under client load and keeps its
// hands off: the survivors elect on their own, the client fails over
// through redirects, the deposed member restarts and rejoins, and the
// whole cluster must converge on the uninterrupted run's states.
func runHandsOffTrial(t *testing.T, trial int) handsOffDigest {
	t.Helper()
	w := testWorkload(t, 16)
	want := referenceStates(t, w)
	fabric := newChaosNet()
	elog := newElectionLog()

	addrs := []string{"alpha", "beta", "gamma"}
	peersOf := func(self string) []string {
		var ps []string
		for _, a := range addrs {
			if a != self {
				ps = append(ps, a)
			}
		}
		return ps
	}
	var members []*liveNode
	for i, a := range addrs {
		ln := startLiveNode(t, fabric, elog, w, a, t.TempDir(), peersOf(a), int64(trial*100+i))
		members = append(members, ln)
	}
	defer func() {
		for _, m := range members {
			m.stop()
		}
	}()

	waitFor(t, 10*time.Second, "initial election", func() bool { return currentLeader(members) != nil })

	cl := chaosClient(t, fabric, addrs, int64(trial), 2*time.Millisecond)
	clientDone := make(chan error, 1)
	go func() { clientDone <- cl.Run(context.Background(), w.Batches) }()

	// Let real load build, then kill whoever leads — hands off from here.
	waitFor(t, 10*time.Second, "load before the kill", func() bool {
		for _, m := range members {
			if m.node.Follower().Seq() >= 4 {
				return true
			}
		}
		return false
	})
	victim := currentLeader(members)
	if victim == nil {
		t.Fatal("leader vanished before the kill")
	}
	fabric.kill(victim.addr)
	victim.stop()

	if err := <-clientDone; err != nil {
		t.Fatalf("trial %d: client did not survive the failover: %v", trial, err)
	}
	if got := cl.Acked(); got != uint64(len(w.Batches)) {
		t.Fatalf("trial %d: client acked %d of %d batches", trial, got, len(w.Batches))
	}

	// The deposed member restarts from its own disks and must rejoin —
	// catching up, or reseeding if its unacknowledged tail diverged.
	for i, m := range members {
		if m == victim {
			members[i] = startLiveNode(t, fabric, elog, w, m.addr, m.dir, peersOf(m.addr), int64(trial*100+50))
		}
	}

	height := uint64(len(w.Batches))
	defer func() {
		if t.Failed() {
			for _, m := range members {
				t.Logf("%s: role=%s term=%d seq=%d", m.addr, m.node.Role(), m.node.Term(), m.node.Follower().Seq())
			}
			elog.mu.Lock()
			for _, l := range elog.lines {
				t.Log(l)
			}
			elog.mu.Unlock()
		}
	}()
	waitFor(t, 15*time.Second, "full cluster convergence", func() bool {
		for _, m := range members {
			if m.node.Follower().Seq() != height {
				return false
			}
		}
		return currentLeader(members) != nil
	})

	leaders := 0
	for _, m := range members {
		if m.node.Role() == RoleLeader {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("trial %d: %d leaders after convergence, want exactly 1", trial, leaders)
	}
	elog.checkOneLeaderPerTerm(t)
	acked := cl.Acked()

	// Quiesce before touching states: the durable sequence is stored
	// before the apply, so a just-converged member may still be applying
	// its last record. stop() joins the session, making the reads safe.
	for _, m := range members {
		m.stop()
	}
	for _, m := range members {
		if !statesEqual(m.node.Follower().Pipeline().Session().States(), want) {
			t.Fatalf("trial %d: %s diverged from the uninterrupted run", trial, m.addr)
		}
	}
	return handsOffDigest{
		acked:     acked,
		height:    height,
		stateHash: hashStates(members[0].node.Follower().Pipeline().Session().States()),
	}
}

// TestChaosHandsOffFailover: kill-the-leader-under-load trials with no
// operator in the loop, each run twice — the converged outcome must be
// identical both times.
func TestChaosHandsOffFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second failover trials")
	}
	for trial := 0; trial < 3; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			first := runHandsOffTrial(t, trial)
			second := runHandsOffTrial(t, trial)
			if first != second {
				t.Fatalf("trial %d not deterministic: %+v vs %+v", trial, first, second)
			}
		})
	}
}

// TestChaosAsymmetricPartition: one follower goes deaf — every inbound
// connection to it dies after a single read (fault.NetPartitionRecv)
// while its own outbound dials still work. The deaf node's elections
// must defer to the leader everyone else still hears (leader
// stickiness), leadership and terms must hold steady, and healing the
// partition must let the deaf node catch all the way up over a
// same-term reattach.
func TestChaosAsymmetricPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second partition trial")
	}
	w := testWorkload(t, 12)
	want := referenceStates(t, w)
	fabric := newChaosNet()
	elog := newElectionLog()

	addrs := []string{"alpha", "beta", "gamma"}
	var members []*liveNode
	for i, a := range addrs {
		var peers []string
		for _, p := range addrs {
			if p != a {
				peers = append(peers, p)
			}
		}
		members = append(members, startLiveNode(t, fabric, elog, w, a, t.TempDir(), peers, int64(900+i)))
	}
	defer func() {
		for _, m := range members {
			m.stop()
		}
	}()
	waitFor(t, 10*time.Second, "initial election", func() bool { return currentLeader(members) != nil })
	leader := currentLeader(members)

	// Feed half the workload, then partition the reads of one follower.
	cl := chaosClient(t, fabric, addrs, 901, 0)
	if err := cl.Run(context.Background(), w.Batches[:6]); err != nil {
		t.Fatalf("pre-partition ingest: %v", err)
	}

	var deaf *liveNode
	for _, m := range members {
		if m != leader {
			deaf = m
			break
		}
	}
	// Each inbound connection gets its own injector: the partition trip
	// is one-shot per injector, and the deafness must hit every attach
	// attempt, not just the first.
	var wrapSeq int64
	fabric.wrapInbound(deaf.addr, func(c net.Conn) net.Conn {
		inj := fault.New(902 + atomic.AddInt64(&wrapSeq, 1))
		inj.Arm(fault.NetPartitionRecv, 1)
		return inj.Conn(c)
	})
	fabric.sever(deaf.addr)

	// The deaf node's lease expires and it keeps standing for election;
	// every candidacy must lose to the live leader.
	deafCol := deaf.node.Follower().Pipeline().Collector()
	waitFor(t, 10*time.Second, "deaf node candidacies", func() bool {
		return deafCol.Get(stats.CtrReplElections) >= 3
	})
	if err := cl.Run(context.Background(), w.Batches[:9]); err != nil {
		t.Fatalf("mid-partition ingest: %v", err)
	}
	if got := currentLeader(members); got != leader {
		t.Fatalf("leadership moved during an asymmetric partition: %v", got)
	}
	if got := deaf.node.Role(); got == RoleLeader {
		t.Fatal("deaf node deposed a healthy leader")
	}
	for _, m := range members {
		if got := m.node.Follower().Pipeline().Collector().Get(stats.CtrReplDemotions); got != 0 {
			t.Fatalf("%s demoted %d times during an asymmetric partition", m.addr, got)
		}
	}

	// Heal: the leader reattaches the deaf node at the *same* term (a
	// reconnect, not a new claim) and it converges.
	fabric.wrapInbound(deaf.addr, nil)
	if err := cl.Run(context.Background(), w.Batches); err != nil {
		t.Fatalf("post-heal ingest: %v", err)
	}
	height := uint64(len(w.Batches))
	waitFor(t, 10*time.Second, "deaf node catch-up after heal", func() bool {
		return deaf.node.Follower().Seq() == height
	})
	if got := leader.node.Term(); got != deaf.node.Follower().Term() {
		t.Fatalf("healed node at term %d, leader at %d", deaf.node.Follower().Term(), got)
	}
	elog.checkOneLeaderPerTerm(t)
	// Quiesce before reading states: stop() joins the catch-up session
	// that may still be applying the deaf node's last record.
	for _, m := range members {
		m.stop()
	}
	if !statesEqual(deaf.node.Follower().Pipeline().Session().States(), want) {
		t.Fatal("healed node diverged from the uninterrupted run")
	}
}

// TestChaosLeaderIsolationHeals: the leader is partitioned from both
// followers mid-load. The majority side elects a new leader and keeps
// serving the client; the isolated ex-leader steps itself down after a
// lease of missed quorums; healing the partition lets it rejoin as a
// follower and converge. One leader per term throughout.
func TestChaosLeaderIsolationHeals(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second partition trial")
	}
	w := testWorkload(t, 16)
	want := referenceStates(t, w)
	fabric := newChaosNet()
	elog := newElectionLog()

	addrs := []string{"alpha", "beta", "gamma"}
	var members []*liveNode
	for i, a := range addrs {
		var peers []string
		for _, p := range addrs {
			if p != a {
				peers = append(peers, p)
			}
		}
		members = append(members, startLiveNode(t, fabric, elog, w, a, t.TempDir(), peers, int64(700+i)))
	}
	defer func() {
		for _, m := range members {
			m.stop()
		}
	}()
	waitFor(t, 10*time.Second, "initial election", func() bool { return currentLeader(members) != nil })

	cl := chaosClient(t, fabric, addrs, 703, 2*time.Millisecond)
	clientDone := make(chan error, 1)
	go func() { clientDone <- cl.Run(context.Background(), w.Batches) }()
	waitFor(t, 10*time.Second, "load before the partition", func() bool {
		for _, m := range members {
			if m.node.Follower().Seq() >= 4 {
				return true
			}
		}
		return false
	})

	isolated := currentLeader(members)
	if isolated == nil {
		t.Fatal("leader vanished before the partition")
	}
	fabric.isolate(isolated.addr, true)

	// The isolated ex-leader must step itself down, not serve a
	// minority partition forever.
	waitFor(t, 10*time.Second, "isolated leader steps down", func() bool {
		return isolated.node.Role() != RoleLeader
	})
	icol := isolated.node.Follower().Pipeline().Collector()
	if got := icol.Get(stats.CtrReplDemotions); got < 1 {
		t.Fatalf("isolated leader demotions = %d, want >= 1", got)
	}
	// The majority side keeps the client going to completion.
	if err := <-clientDone; err != nil {
		t.Fatalf("client did not survive the leader's isolation: %v", err)
	}
	if got := cl.Acked(); got != uint64(len(w.Batches)) {
		t.Fatalf("client acked %d of %d batches", got, len(w.Batches))
	}

	// Heal: the deposed member rejoins the new leader's cluster.
	fabric.isolate(isolated.addr, false)
	height := uint64(len(w.Batches))
	waitFor(t, 15*time.Second, "rejoin after heal", func() bool {
		return isolated.node.Follower().Seq() == height
	})
	leaders := 0
	for _, m := range members {
		if m.node.Role() == RoleLeader {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("%d leaders after heal, want exactly 1", leaders)
	}
	elog.checkOneLeaderPerTerm(t)
	// Quiesce before reading states: stop() joins the rejoin session
	// that may still be applying the ex-leader's last record.
	for _, m := range members {
		m.stop()
	}
	if !statesEqual(isolated.node.Follower().Pipeline().Session().States(), want) {
		t.Fatal("rejoined node diverged from the uninterrupted run")
	}
}
