package replica

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"testing"

	"github.com/tdgraph/tdgraph/internal/fault"
	"github.com/tdgraph/tdgraph/internal/serve"
	"github.com/tdgraph/tdgraph/internal/stats"
	"github.com/tdgraph/tdgraph/internal/stream"
	"github.com/tdgraph/tdgraph/internal/wal"
)

// reseedDigest captures everything a reseed trial decided; replaying
// the same seed must reproduce it bit for bit.
type reseedDigest struct {
	resumedAt uint64 // partial size the second attempt resumed from
	offers    uint64
	resumes   uint64
	aborts    uint64
	stateHash uint64
}

// cutConn severs the primary→follower direction after budget bytes:
// the write fails and the underlying conn is closed, so the follower's
// pending read dies too — a primary killed mid-transfer.
type cutConn struct {
	net.Conn
	budget int
}

func (c *cutConn) Write(p []byte) (int, error) {
	if c.budget < len(p) {
		c.Conn.Close()
		return 0, errors.New("cut: wire severed mid-frame")
	}
	c.budget -= len(p)
	return c.Conn.Write(p)
}

// divergedFollower builds a follower whose log is ahead of any primary
// that only holds the first five batches: it lived a full ten-batch
// life under term 1.
func divergedFollower(t *testing.T, w *stream.Workload, dir string) *Follower {
	t.Helper()
	fl, err := NewFollower(FollowerConfig{Pipeline: nodeConfig(w, dir)})
	if err != nil {
		t.Fatal(err)
	}
	feedFollower(t, fl, w, 1, 0, 10)
	return fl
}

// reseedPrimary builds a five-batch checkpointed history and returns a
// primary constructor over it: mk(term) claims the term durably and
// returns a Primary serving that history at it. Trials use mk(2) for
// the first session and mk(3) for the retry — a failed session already
// made the follower adopt term 2, and terms are single-use by design,
// so the retry must claim fresh authority exactly as a restarted
// primary process would. Any ten-batch follower diverges from it.
func reseedPrimary(t *testing.T, w *stream.Workload, chunk int) (func(term uint64) *Primary, *serve.Pipeline, *stats.Collector) {
	t.Helper()
	pdir := t.TempDir()
	col := stats.NewCollector()
	pcfg := nodeConfig(w, pdir)
	pcfg.Collector = col
	pipe, err := serve.NewPipeline(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range w.Batches[:5] {
		if err := pipe.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	mk := func(term uint64) *Primary {
		if _, err := ClaimTerm(wal.Options{Dir: pdir}, term); err != nil {
			t.Fatal(err)
		}
		return NewPrimary(PrimaryConfig{
			Term: term, ClusterSize: 2, WAL: pcfg.WAL, Collector: col,
			Snapshots: pipe.SnapshotSource(), SnapChunkBytes: chunk,
		})
	}
	return mk, pipe, col
}

// runKillPrimaryMidTransferTrial severs the snapshot wire after a
// seeded byte budget, proving the half-transfer invariants — the
// follower keeps its old state (no usable half-install, even across a
// restart), the fsynced partial survives — then reconnects and finishes
// via resume. Returns the trial's digest.
func runKillPrimaryMidTransferTrial(t *testing.T, trial int) reseedDigest {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(7000 + trial)))
	w := testWorkload(t, 10)
	want := referenceStates(t, w)
	const chunk = 64

	adir := t.TempDir()
	fa := divergedFollower(t, w, adir)
	mkPrim, pipe, col := reseedPrimary(t, w, chunk)
	prim := mkPrim(2)

	// Sever inside the chunk stream: past the offer frame (frameHdrSize
	// plus its payload is comfortably under 200 bytes) but before the
	// transfer can complete.
	budget := 230 + chunk*int(rng.Int63n(3))
	pside, fside := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- fa.Serve(fside) }()
	err := prim.AddFollower(&cutConn{Conn: pside, budget: budget})
	if !errors.Is(err, ErrFollowerDiverged) || !errors.Is(err, ErrReseedAborted) {
		t.Fatalf("severed reseed: want ErrFollowerDiverged+ErrReseedAborted, got %v", err)
	}
	if serr := <-done; !errors.Is(serr, ErrReseedAborted) {
		t.Fatalf("severed follower session: want ErrReseedAborted, got %v", serr)
	}
	if prim.Followers() != 0 {
		t.Fatalf("half-reseeded follower was attached (%d followers)", prim.Followers())
	}

	// The follower restarts: its old durable state is intact — nothing
	// half-installed — and the partial transfer survived the crash.
	fa.Pipeline().Close()
	fa, err = NewFollower(FollowerConfig{Pipeline: nodeConfig(w, adir)})
	if err != nil {
		t.Fatalf("restart after severed transfer: %v", err)
	}
	if fa.Seq() != 10 {
		t.Fatalf("restarted follower at seq %d, want its old 10", fa.Seq())
	}
	resumedAt := uint64(0)
	if st, err := os.Stat(filepath.Join(adir, reseedPartialName)); err == nil {
		resumedAt = uint64(st.Size())
	}

	// Reconnect: the follower durably adopted term 2 during the severed
	// session and refuses repeats of it, so the retry claims term 3 —
	// the same fresh-authority step a restarted primary process takes.
	// Still diverged, it is reseeded again — resuming from the fsynced
	// offset when any chunk landed — then served to the end.
	prim.Close()
	prim = mkPrim(3)
	na := attach(t, prim, fa, nil)
	pipe.SetReplicator(prim)
	for _, b := range w.Batches[5:] {
		if err := pipe.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := pipe.Close(); err != nil {
		t.Fatal(err)
	}
	prim.Close()
	if err := <-na.done; err != nil {
		t.Fatalf("follower session: %v", err)
	}

	if fa.Seq() != 10 || !statesEqual(fa.Pipeline().Session().States(), want) {
		t.Fatalf("reseeded follower did not converge (seq %d)", fa.Seq())
	}
	if resumedAt > 0 && col.Get(stats.CtrReplReseedResumes) != 1 {
		t.Fatalf("partial of %d bytes existed but resumes = %d", resumedAt, col.Get(stats.CtrReplReseedResumes))
	}
	dig := reseedDigest{
		resumedAt: resumedAt,
		offers:    col.Get(stats.CtrReplReseedOffers),
		resumes:   col.Get(stats.CtrReplReseedResumes),
		aborts:    col.Get(stats.CtrReplReseedAborts),
		stateHash: hashStates(fa.Pipeline().Session().States()),
	}
	fa.Pipeline().Close()
	return dig
}

// TestChaosReseedKillPrimaryMidTransfer: seeded kill-the-primary
// trials at different points of the chunk stream. Every trial must end
// with a converged, bit-identical follower, and every trial must
// reproduce exactly when its seed is replayed.
func TestChaosReseedKillPrimaryMidTransfer(t *testing.T) {
	for trial := 0; trial < 3; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			first := runKillPrimaryMidTransferTrial(t, trial)
			second := runKillPrimaryMidTransferTrial(t, trial)
			if first != second {
				t.Fatalf("trial %d not deterministic: %+v vs %+v", trial, first, second)
			}
		})
	}
}

// runKillFollowerMidInstallTrial crashes the *follower* (CrashFS fuse
// on its own disk) partway through receiving and installing the
// snapshot — during the mark write, the partial's chunk fsyncs, or the
// post-install ledger write, depending on the seeded fuse. The restart
// must recover cleanly to either the old state (re-reseeded, resuming
// the partial) or the fully installed snapshot (caught up normally) —
// never anything in between — and converge to the reference.
func runKillFollowerMidInstallTrial(t *testing.T, trial int) reseedDigest {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(8000 + trial)))
	w := testWorkload(t, 10)
	want := referenceStates(t, w)

	adir := t.TempDir()
	crashFS := fault.NewCrashFS()
	acfg := nodeConfig(w, adir)
	acfg.WAL.FS = crashFS
	fa, err := NewFollower(FollowerConfig{Pipeline: acfg})
	if err != nil {
		t.Fatal(err)
	}
	feedFollower(t, fa, w, 1, 0, 10)

	mkPrim, pipe, col := reseedPrimary(t, w, 64)
	prim := mkPrim(2)

	// Arm the fuse: sync 0 is the resume mark, 1 the fresh partial,
	// then one per 64-byte chunk; large values land in the ledger
	// rewrite after the install.
	crashFS.ArmCrashAtSync(int(rng.Int63n(6)))
	pside, fside := net.Pipe()
	done := make(chan error, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(fault.CrashSignal); !ok {
					panic(r)
				}
				// The process died: its half of the wire dies with it, so
				// the primary sees the failure now, not at its ack timeout.
				fside.Close()
				done <- fmt.Errorf("follower crashed mid-install")
			}
		}()
		done <- fa.Serve(fside)
	}()
	if err := prim.AddFollower(pside); err == nil {
		t.Fatal("AddFollower succeeded through a crashing follower")
	} else if !errors.Is(err, ErrFollowerDiverged) {
		t.Fatalf("crashing reseed: want ErrFollowerDiverged in chain, got %v", err)
	}
	<-done
	// The machine dies: unsynced page cache is lost with it.
	if err := crashFS.LoseUnsynced(rng); err != nil {
		t.Fatal(err)
	}

	// Restart on a healthy disk. Recovery must land on a consistent
	// state: the old log (crash before the install completed) or the
	// installed snapshot (crash after) — either rejoins cleanly.
	fa, err = NewFollower(FollowerConfig{Pipeline: nodeConfig(w, adir)})
	if err != nil {
		t.Fatalf("restart after mid-install crash: %v", err)
	}
	if got := fa.Seq(); got != 10 && got != 3 {
		t.Fatalf("restarted follower at seq %d, want the old 10 or the installed 3", got)
	}

	// Terms are single-use: the crashed session already adopted term 2
	// on the follower, so the retry claims 3 as a restarted primary would.
	prim.Close()
	prim = mkPrim(3)
	na := attach(t, prim, fa, nil)
	pipe.SetReplicator(prim)
	for _, b := range w.Batches[5:] {
		if err := pipe.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := pipe.Close(); err != nil {
		t.Fatal(err)
	}
	prim.Close()
	if err := <-na.done; err != nil {
		t.Fatalf("follower session after crash recovery: %v", err)
	}

	if fa.Seq() != 10 || !statesEqual(fa.Pipeline().Session().States(), want) {
		t.Fatalf("crashed follower did not converge (seq %d)", fa.Seq())
	}
	dig := reseedDigest{
		offers:    col.Get(stats.CtrReplReseedOffers),
		resumes:   col.Get(stats.CtrReplReseedResumes),
		aborts:    col.Get(stats.CtrReplReseedAborts),
		stateHash: hashStates(fa.Pipeline().Session().States()),
	}
	fa.Pipeline().Close()
	return dig
}

// TestChaosReseedKillFollowerMidInstall: seeded kill-the-follower
// trials with the crash fuse landing across the install sequence.
func TestChaosReseedKillFollowerMidInstall(t *testing.T) {
	for trial := 0; trial < 3; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			first := runKillFollowerMidInstallTrial(t, trial)
			second := runKillFollowerMidInstallTrial(t, trial)
			if first != second {
				t.Fatalf("trial %d not deterministic: %+v vs %+v", trial, first, second)
			}
		})
	}
}

// retentionDigest pins the full self-healing loop's outcome.
type retentionDigest struct {
	startSeq  uint64
	removed   uint64
	offers    uint64
	stateHash uint64
}

// runRetentionAdvanceTrial is the whole PR in one scenario: a primary
// with an in-step follower keeps checkpointing, and replication-aware
// retention deletes WAL segments past the shipped checkpoints (the log
// is NOT pinned to history forever); a late joiner that needs the
// deleted records is reseeded from a checkpoint and catches the live
// tail; everyone ends bit-identical to the reference.
func runRetentionAdvanceTrial(t *testing.T) retentionDigest {
	t.Helper()
	w := testWorkload(t, 12)
	want := referenceStates(t, w)

	pdir := t.TempDir()
	col := stats.NewCollector()
	pcfg := nodeConfig(w, pdir)
	pcfg.Collector = col
	pcfg.WAL.SegmentBytes = 512
	if _, err := ClaimTerm(wal.Options{Dir: pdir}, 1); err != nil {
		t.Fatal(err)
	}

	f1, c1, d1 := startFollower(t, w, t.TempDir())
	prim := NewPrimary(PrimaryConfig{
		Term: 1, ClusterSize: 2, WAL: pcfg.WAL, Collector: col,
		SnapChunkBytes: 128,
	})
	if err := prim.AddFollower(c1); err != nil {
		t.Fatal(err)
	}
	pcfg.Replicator = prim
	pipe, err := serve.NewPipeline(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	// The snapshot source must exist before retention can strand anyone.
	prim.cfg.Snapshots = pipe.SnapshotSource()

	for _, b := range w.Batches[:10] {
		if err := pipe.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	// Retention must have advanced past shipped checkpoints — segments
	// actually deleted — while the live follower kept up.
	start, err := wal.StartSeq(pcfg.WAL)
	if err != nil {
		t.Fatal(err)
	}
	if start <= 1 {
		t.Fatalf("retention never advanced under a live follower (StartSeq %d)", start)
	}
	if col.Get(stats.CtrWALRetained) == 0 {
		t.Fatal("no WAL segments were removed despite advancing checkpoints")
	}
	if f1.Seq() != 10 {
		t.Fatalf("live follower fell behind at seq %d", f1.Seq())
	}

	// A late joiner needs seq 1; the log now starts past it: reseed.
	f2, c2, d2 := startFollower(t, w, t.TempDir())
	if err := prim.AddFollower(c2); err != nil {
		t.Fatalf("late joiner past retention: %v", err)
	}
	for _, b := range w.Batches[10:] {
		if err := pipe.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := pipe.Close(); err != nil {
		t.Fatal(err)
	}
	prim.Close()
	if err := <-d1; err != nil {
		t.Fatalf("follower 1 session: %v", err)
	}
	if err := <-d2; err != nil {
		t.Fatalf("follower 2 session: %v", err)
	}

	if f1.Seq() != 12 || f2.Seq() != 12 {
		t.Fatalf("followers finished at %d/%d, want 12/12", f1.Seq(), f2.Seq())
	}
	for i, fl := range []*Follower{f1, f2} {
		if !statesEqual(fl.Pipeline().Session().States(), want) {
			t.Fatalf("follower %d states diverged from reference", i+1)
		}
	}
	if !statesEqual(pipe.Session().States(), want) {
		t.Fatal("primary states diverged from reference")
	}
	if col.Get(stats.CtrReplReseedOffers) != 1 || col.Get(stats.CtrReplReseedAborts) != 0 {
		t.Fatalf("offers=%d aborts=%d, want 1/0",
			col.Get(stats.CtrReplReseedOffers), col.Get(stats.CtrReplReseedAborts))
	}
	if f2.Pipeline().Collector().Get(stats.CtrReplReseedInstalls) != 1 {
		t.Fatal("late joiner never installed a snapshot")
	}

	dig := retentionDigest{
		startSeq:  start,
		removed:   col.Get(stats.CtrWALRetained),
		offers:    col.Get(stats.CtrReplReseedOffers),
		stateHash: hashStates(f2.Pipeline().Session().States()),
	}
	f1.Pipeline().Close()
	f2.Pipeline().Close()
	return dig
}

// TestChaosReseedRetentionAdvances: replication-aware compaction plus
// automatic reseed, end to end, double-run deterministic.
func TestChaosReseedRetentionAdvances(t *testing.T) {
	first := runRetentionAdvanceTrial(t)
	second := runRetentionAdvanceTrial(t)
	if first != second {
		t.Fatalf("retention trial not deterministic: %+v vs %+v", first, second)
	}
}
