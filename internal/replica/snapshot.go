package replica

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"

	"github.com/tdgraph/tdgraph/internal/stats"
	"github.com/tdgraph/tdgraph/internal/wal"
)

// Reseed is the self-healing half of divergence detection: where PR 4
// could only refuse a conflicting or hopelessly behind replica, the
// primary now ships it the newest checkpoint generation and the
// follower installs it atomically, resets its term ledger to the
// shipped history, and rejoins ordinary catch-up from the checkpoint's
// sequence. The transfer is resumable — the follower keeps the chunks
// it has and answers a repeated offer of the *same* snapshot with the
// byte offset it already holds — and fails safe: the incoming bytes
// live in a partial file that becomes the checkpoint only via a final
// whole-file checksum, a full TDS2 load, and an atomic rename, so no
// crash point leaves a half-installed snapshot recovery would trust.

// ErrReseedAborted reports a snapshot transfer that did not complete:
// the source had nothing shippable, the follower refused the offer,
// the connection died mid-stream, or the install failed. The partial
// transfer stays on the follower so the next session resumes from the
// last durable chunk instead of starting over.
var ErrReseedAborted = errors.New("replica: reseed aborted")

// ErrSnapshotCorrupt reports a shipped snapshot that failed its
// integrity checks on the follower: whole-file checksum mismatch, or
// a TDS2 load failure at install time. The partial is discarded — its
// bytes are not trustworthy as a resume prefix — and the next offer
// restarts the transfer from byte zero.
var ErrSnapshotCorrupt = errors.New("replica: shipped snapshot corrupt")

// SnapshotSource provides the primary's newest shippable state — the
// checkpoint file the serve pipeline rotates plus its metadata sidecar
// payload. serve.SnapshotSource implements it; the interface lives
// here so the dependency keeps pointing replica → serve.
type SnapshotSource interface {
	// NewestSnapshot returns the newest durable checkpoint generation:
	// the WAL sequence it covers, its metadata sidecar payload, and the
	// checkpoint file's raw bytes.
	NewestSnapshot() (seq uint64, meta []byte, data []byte, err error)
}

// snapOffer is the SnapOffer frame's payload: everything the follower
// needs to judge, resume, verify and install the transfer. Total and
// CRC identify the exact snapshot (a resume against a different one
// restarts at zero), Meta is the checkpoint's sidecar payload shipped
// verbatim, and Ledger is the primary's term ledger truncated to the
// snapshot — the follower's post-install ledger, replacing whatever
// conflicting history its own stamps described.
type snapOffer struct {
	Total  uint64
	CRC    uint32
	Meta   []byte
	Ledger []TermBase
}

const (
	// maxSnapMeta bounds the sidecar payload in an offer; real sidecars
	// hold 8 bytes (the covered sequence).
	maxSnapMeta = 1 << 16

	reseedPartialName = "reseed.partial"
	reseedMarkName    = "reseed.offer"

	reseedMarkMagic = 0x54445352 // "TDSR"
	reseedMarkSize  = 28         // magic u32 | seq u64 | total u64 | crc u32 | mark crc u32
)

func (o snapOffer) encode() []byte {
	buf := make([]byte, 0, 8+4+2+len(o.Meta)+2+16*len(o.Ledger))
	buf = binary.LittleEndian.AppendUint64(buf, o.Total)
	buf = binary.LittleEndian.AppendUint32(buf, o.CRC)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(o.Meta)))
	buf = append(buf, o.Meta...)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(o.Ledger)))
	for _, e := range o.Ledger {
		buf = binary.LittleEndian.AppendUint64(buf, e.Term)
		buf = binary.LittleEndian.AppendUint64(buf, e.Base)
	}
	return buf
}

// decodeSnapOffer validates and decodes an offer payload. Malformed
// payloads fail with a *FrameError wrapping ErrBadFrame, exactly like
// the frame codec itself, and a valid decode re-encodes byte-identical
// (the fuzz harness pins both properties).
func decodeSnapOffer(payload []byte) (snapOffer, error) {
	bad := func(reason string, args ...any) (snapOffer, error) {
		return snapOffer{}, &FrameError{Reason: "snap offer",
			Err: fmt.Errorf("%w: "+reason, append([]any{ErrBadFrame}, args...)...)}
	}
	if len(payload) < 8+4+2 {
		return bad("offer truncated at %d bytes", len(payload))
	}
	o := snapOffer{
		Total: binary.LittleEndian.Uint64(payload[0:8]),
		CRC:   binary.LittleEndian.Uint32(payload[8:12]),
	}
	metaLen := int(binary.LittleEndian.Uint16(payload[12:14]))
	if metaLen > maxSnapMeta {
		return bad("implausible meta length %d", metaLen)
	}
	rest := payload[14:]
	if len(rest) < metaLen+2 {
		return bad("meta truncated: %d bytes of %d", len(rest), metaLen)
	}
	if metaLen > 0 {
		o.Meta = append([]byte(nil), rest[:metaLen]...)
	}
	rest = rest[metaLen:]
	n := int(binary.LittleEndian.Uint16(rest[0:2]))
	rest = rest[2:]
	if n > maxLedgerEntries {
		return bad("implausible ledger length %d", n)
	}
	if len(rest) != 16*n {
		return bad("ledger length %d does not hold %d entries", len(rest), n)
	}
	for i := 0; i < n; i++ {
		o.Ledger = append(o.Ledger, TermBase{
			Term: binary.LittleEndian.Uint64(rest[16*i : 16*i+8]),
			Base: binary.LittleEndian.Uint64(rest[16*i+8 : 16*i+16]),
		})
	}
	return o, nil
}

// ledgerPrefix returns the entries describing records up to and
// including seq — the history the snapshot actually covers. Entries
// based past the snapshot describe records the follower will receive
// (and stamp) through ordinary catch-up.
func ledgerPrefix(ledger []TermBase, seq uint64) []TermBase {
	var out []TermBase
	for _, e := range ledger {
		if e.Base <= seq {
			out = append(out, e)
		}
	}
	return out
}

// --- primary side -----------------------------------------------------

// reseed ships the newest checkpoint to fc and returns the sequence
// the follower installed, leaving fc.acked there so ordinary catch-up
// continues from the snapshot. The transfer resumes where a previous
// one of the same snapshot left off: the follower answers the offer
// with the byte offset it already holds, and every chunk ack advances
// the resume point, so a connection drop costs only the chunk in
// flight.
func (p *Primary) reseed(fc *followerConn) (uint64, error) {
	seq, meta, data, err := p.cfg.Snapshots.NewestSnapshot()
	if err != nil {
		return 0, p.abortReseed(fmt.Errorf("%w: no shippable checkpoint: %w", ErrReseedAborted, err))
	}
	offer := snapOffer{
		Total:  uint64(len(data)),
		CRC:    crc32.ChecksumIEEE(data),
		Meta:   meta,
		Ledger: ledgerPrefix(p.state.Ledger, seq),
	}
	// Pin retention while the transfer is (possibly) in flight: an
	// interrupted follower resumes tailing at seq+1, and truncating
	// that away would force a second full transfer.
	p.pendingShip, p.pendingShipSet = seq, true
	if err := p.writeFrame(fc, Frame{Type: FrameSnapOffer, Term: p.cfg.Term, Seq: seq, Payload: offer.encode()}); err != nil {
		return 0, p.abortReseed(fmt.Errorf("%w: offering snapshot: %w", ErrReseedAborted, err))
	}
	p.col.Inc(stats.CtrReplReseedOffers)
	f, err := p.readFrame(fc)
	if err != nil {
		return 0, p.abortReseed(fmt.Errorf("%w: awaiting offer answer: %w", ErrReseedAborted, err))
	}
	switch f.Type {
	case FrameAck:
		// f.Seq is the resume offset the follower already holds.
	case FrameReject:
		if f.Term > p.cfg.Term {
			return 0, p.abortReseed(fmt.Errorf("%w: follower moved to term %d, ours is %d", ErrStaleTerm, f.Term, p.cfg.Term))
		}
		return 0, p.abortReseed(fmt.Errorf("%w: follower refused the offer at its seq %d", ErrReseedAborted, f.Seq))
	default:
		return 0, p.abortReseed(&FrameError{Reason: "offer answer",
			Err: fmt.Errorf("%w: unexpected frame type %d", ErrBadFrame, f.Type)})
	}
	off := f.Seq
	if off > offer.Total {
		return 0, p.abortReseed(fmt.Errorf("%w: follower claims %d of %d bytes", ErrReseedAborted, off, offer.Total))
	}
	if off > 0 {
		p.col.Inc(stats.CtrReplReseedResumes)
		p.cfg.OnEvent(fmt.Sprintf("%s resumes snapshot seq %d at byte %d of %d", fc.name, seq, off, offer.Total))
	}

	chunk := uint64(p.cfg.SnapChunkBytes)
	for off < offer.Total {
		n := chunk
		if off+n > offer.Total {
			n = offer.Total - off
		}
		if err := p.writeFrame(fc, Frame{Type: FrameSnapChunk, Term: p.cfg.Term, Seq: off, Payload: data[off : off+n]}); err != nil {
			return 0, p.abortReseed(fmt.Errorf("%w: shipping chunk at byte %d: %w", ErrReseedAborted, off, err))
		}
		p.col.Inc(stats.CtrReplReseedChunks)
		ack, err := p.readFrame(fc)
		if err != nil {
			return 0, p.abortReseed(fmt.Errorf("%w: awaiting chunk ack at byte %d: %w", ErrReseedAborted, off, err))
		}
		if ack.Type != FrameAck || ack.Seq <= off || ack.Seq > offer.Total {
			return 0, p.abortReseed(fmt.Errorf("%w: bad chunk ack (type %d, offset %d)", ErrReseedAborted, ack.Type, ack.Seq))
		}
		off = ack.Seq
	}

	if err := p.writeFrame(fc, Frame{Type: FrameSnapDone, Term: p.cfg.Term, Seq: seq}); err != nil {
		return 0, p.abortReseed(fmt.Errorf("%w: finishing transfer: %w", ErrReseedAborted, err))
	}
	f, err = p.readFrame(fc)
	if err != nil {
		return 0, p.abortReseed(fmt.Errorf("%w: awaiting install ack: %w", ErrReseedAborted, err))
	}
	if f.Type != FrameAck || f.Seq != seq {
		return 0, p.abortReseed(fmt.Errorf("%w: follower failed to install (type %d, seq %d)", ErrReseedAborted, f.Type, f.Seq))
	}
	fc.acked = seq
	p.pendingShipSet = false
	p.cfg.OnEvent(fmt.Sprintf("%s reseeded to seq %d (%d bytes)", fc.name, seq, offer.Total))
	return seq, nil
}

// abortReseed counts a failed transfer and passes the cause through.
func (p *Primary) abortReseed(err error) error {
	p.col.Inc(stats.CtrReplReseedAborts)
	return err
}

// RetainFloor implements serve.RetentionAdvisor: the highest sequence
// WAL retention may truncate through without orphaning replication.
// It is the minimum over every live follower's acknowledged sequence
// — each still tails the log from acked+1 — and the covered sequence
// of any snapshot transfer still in flight, whose follower resumes
// tailing at that point after installing. With no live followers and
// no pending transfer there is no replication constraint (ok=false)
// and local checkpoint generations alone bound retention, exactly the
// solo behavior. A follower that rejoins from below the floor anyway
// (it was dead when retention advanced) is reseeded, not refused.
func (p *Primary) RetainFloor() (uint64, bool) {
	floor, ok := uint64(0), false
	for _, fc := range p.followers {
		if fc.dead {
			continue
		}
		if !ok || fc.acked < floor {
			floor, ok = fc.acked, true
		}
	}
	if p.pendingShipSet && (!ok || p.pendingShip < floor) {
		floor, ok = p.pendingShip, true
	}
	return floor, ok
}

// --- follower side ----------------------------------------------------

// receiveSnapshot runs the follower half of a transfer that the offer
// frame just opened: answer with the resume offset, stream chunks into
// the partial file (fsynced per chunk, so the acked offset survives a
// crash), then verify, install and ack — or reject, keeping the
// partial for resumption unless its bytes proved corrupt.
func (f *Follower) receiveSnapshot(conn net.Conn, fr Frame) error {
	reject := func() {
		WriteFrame(conn, Frame{Type: FrameReject, Term: f.state.Term, Seq: f.pipe.Seq()})
	}
	offer, err := decodeSnapOffer(fr.Payload)
	if err != nil {
		reject()
		return err
	}
	if !f.pipe.CanInstallSnapshot() {
		f.col.Inc(stats.CtrReplReseedAborts)
		f.cfg.OnEvent("refused snapshot offer: no checkpoint path to install into")
		reject()
		return fmt.Errorf("%w: follower has no checkpoint path to install into", ErrReseedAborted)
	}

	// Resume only a partial of this exact snapshot; anything else —
	// no partial, a different snapshot, an unreadable mark — restarts
	// from zero. The prefix is rewritten through the same FS seam the
	// chunks use, so its durability accounting stays honest.
	partialPath := f.dir + "/" + reseedPartialName
	prefix := f.loadPartial(fr.Seq, offer)
	if len(prefix) > 0 {
		f.col.Inc(stats.CtrReplReseedResumes)
		f.cfg.OnEvent(fmt.Sprintf("resuming snapshot seq %d at byte %d of %d", fr.Seq, len(prefix), offer.Total))
	}
	if err := f.writeReseedMark(fr.Seq, offer); err != nil {
		reject()
		return fmt.Errorf("%w: persisting transfer mark: %w", ErrReseedAborted, err)
	}
	file, err := f.fs.Create(partialPath)
	if err != nil {
		reject()
		return fmt.Errorf("%w: creating partial: %w", ErrReseedAborted, err)
	}
	have := uint64(0)
	if len(prefix) > 0 {
		if _, err := file.Write(prefix); err != nil {
			file.Close()
			reject()
			return fmt.Errorf("%w: rewriting resumed prefix: %w", ErrReseedAborted, err)
		}
		have = uint64(len(prefix))
	}
	if err := file.Sync(); err != nil {
		file.Close()
		reject()
		return fmt.Errorf("%w: syncing partial: %w", ErrReseedAborted, err)
	}
	if err := WriteFrame(conn, Frame{Type: FrameAck, Term: f.state.Term, Seq: have}); err != nil {
		file.Close()
		return err
	}

	for {
		cf, err := ReadFrame(conn)
		if err != nil {
			// Connection died mid-transfer (a killed primary, say). The
			// partial and its mark stay: the next offer of this snapshot
			// resumes at the last fsynced byte.
			file.Close()
			f.col.Inc(stats.CtrReplReseedAborts)
			return fmt.Errorf("%w: transfer interrupted at byte %d: %w", ErrReseedAborted, have, err)
		}
		switch cf.Type {
		case FrameSnapChunk:
			if cf.Seq != have || have+uint64(len(cf.Payload)) > offer.Total {
				file.Close()
				f.col.Inc(stats.CtrReplReseedAborts)
				reject()
				return fmt.Errorf("%w: chunk at byte %d does not continue byte %d", ErrReseedAborted, cf.Seq, have)
			}
			if _, err := file.Write(cf.Payload); err != nil {
				file.Close()
				f.col.Inc(stats.CtrReplReseedAborts)
				reject()
				return fmt.Errorf("%w: writing chunk at byte %d: %w", ErrReseedAborted, have, err)
			}
			// Durable before acked: the resume offset this ack promises
			// must survive a follower crash.
			if err := file.Sync(); err != nil {
				file.Close()
				f.col.Inc(stats.CtrReplReseedAborts)
				reject()
				return fmt.Errorf("%w: syncing chunk at byte %d: %w", ErrReseedAborted, have, err)
			}
			have += uint64(len(cf.Payload))
			f.col.Inc(stats.CtrReplReseedChunks)
			if err := WriteFrame(conn, Frame{Type: FrameAck, Term: f.state.Term, Seq: have}); err != nil {
				file.Close()
				return err
			}
		case FrameSnapDone:
			if err := file.Close(); err != nil {
				f.col.Inc(stats.CtrReplReseedAborts)
				reject()
				return fmt.Errorf("%w: closing partial: %w", ErrReseedAborted, err)
			}
			if have != offer.Total {
				f.col.Inc(stats.CtrReplReseedAborts)
				reject()
				return fmt.Errorf("%w: transfer ended at byte %d of %d", ErrReseedAborted, have, offer.Total)
			}
			return f.installSnapshot(conn, cf.Seq, offer, partialPath)
		default:
			file.Close()
			f.col.Inc(stats.CtrReplReseedAborts)
			return &FrameError{Reason: "snapshot transfer",
				Err: fmt.Errorf("%w: unexpected frame type %d", ErrBadFrame, cf.Type)}
		}
	}
}

// installSnapshot verifies the completed partial and makes it this
// follower's entire durable state: whole-file checksum, TDS2 load,
// WAL reset, atomic checkpoint install, and a term ledger rewritten to
// the shipped history — then, and only then, the ack. Corrupt bytes
// discard the partial (no resume from poison) and reject the transfer.
func (f *Follower) installSnapshot(conn net.Conn, seq uint64, offer snapOffer, partialPath string) error {
	reject := func() {
		WriteFrame(conn, Frame{Type: FrameReject, Term: f.state.Term, Seq: f.pipe.Seq()})
	}
	discard := func() {
		f.fs.Remove(partialPath)
		f.fs.Remove(f.dir + "/" + reseedMarkName)
		f.fs.SyncDir(f.dir)
	}
	sum, err := f.checksumPartial(partialPath)
	if err != nil {
		f.col.Inc(stats.CtrReplReseedAborts)
		reject()
		return fmt.Errorf("%w: reading back partial: %w", ErrReseedAborted, err)
	}
	if sum != offer.CRC {
		discard()
		f.col.Inc(stats.CtrReplReseedAborts)
		f.cfg.OnEvent(fmt.Sprintf("discarded snapshot seq %d: checksum mismatch", seq))
		reject()
		return fmt.Errorf("%w: whole-file checksum mismatch (stored %08x, computed %08x)", ErrSnapshotCorrupt, offer.CRC, sum)
	}
	installed, err := f.pipe.InstallSnapshot(partialPath, offer.Meta)
	if err != nil {
		discard()
		f.col.Inc(stats.CtrReplReseedAborts)
		f.cfg.OnEvent(fmt.Sprintf("discarded snapshot seq %d: install failed: %v", seq, err))
		reject()
		return fmt.Errorf("%w: install: %w", ErrSnapshotCorrupt, err)
	}
	// The shipped ledger replaces ours: the snapshot's history is now
	// our entire history, and our old stamps described records the
	// reset WAL no longer holds. Durable before the ack, like every
	// other ledger write.
	adopted := TermState{Term: f.Term(), Ledger: append([]TermBase(nil), offer.Ledger...)}
	if err := SaveTermState(f.fs, f.dir, adopted); err != nil {
		return fmt.Errorf("%w: resetting term ledger: %w", ErrReseedAborted, err)
	}
	f.setState(adopted)
	f.fs.Remove(f.dir + "/" + reseedMarkName) // the partial is already renamed away
	f.fs.SyncDir(f.dir)
	f.col.Inc(stats.CtrReplReseedInstalls)
	f.cfg.OnEvent(fmt.Sprintf("installed snapshot at seq %d (%d bytes)", installed, offer.Total))
	return WriteFrame(conn, Frame{Type: FrameAck, Term: adopted.Term, Seq: installed})
}

// loadPartial returns the bytes of a resumable partial transfer: the
// stored mark must describe exactly the offered snapshot and the
// partial must not exceed it. Any doubt means restart from zero.
func (f *Follower) loadPartial(seq uint64, offer snapOffer) []byte {
	mark, err := readAllFile(f.fs, f.dir+"/"+reseedMarkName)
	if err != nil {
		return nil
	}
	mseq, mtotal, mcrc, ok := decodeReseedMark(mark)
	if !ok || mseq != seq || mtotal != offer.Total || mcrc != offer.CRC {
		return nil
	}
	data, err := readAllFile(f.fs, f.dir+"/"+reseedPartialName)
	if err != nil || uint64(len(data)) > offer.Total {
		return nil
	}
	return data
}

// writeReseedMark durably records which snapshot the partial belongs
// to, so a transfer interrupted by a crash resumes only against the
// same bytes.
func (f *Follower) writeReseedMark(seq uint64, offer snapOffer) error {
	buf := make([]byte, 0, reseedMarkSize)
	buf = binary.LittleEndian.AppendUint32(buf, reseedMarkMagic)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint64(buf, offer.Total)
	buf = binary.LittleEndian.AppendUint32(buf, offer.CRC)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	file, err := f.fs.Create(f.dir + "/" + reseedMarkName)
	if err != nil {
		return err
	}
	if _, err := file.Write(buf); err != nil {
		file.Close()
		return err
	}
	if err := file.Sync(); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}

func decodeReseedMark(data []byte) (seq, total uint64, crc uint32, ok bool) {
	if len(data) != reseedMarkSize {
		return 0, 0, 0, false
	}
	if crc32.ChecksumIEEE(data[:24]) != binary.LittleEndian.Uint32(data[24:28]) {
		return 0, 0, 0, false
	}
	if binary.LittleEndian.Uint32(data[0:4]) != reseedMarkMagic {
		return 0, 0, 0, false
	}
	return binary.LittleEndian.Uint64(data[4:12]),
		binary.LittleEndian.Uint64(data[12:20]),
		binary.LittleEndian.Uint32(data[20:24]), true
}

// checksumPartial reads the partial back through the FS seam (what
// actually reached the file, not what we think we wrote) and returns
// its whole-file CRC.
func (f *Follower) checksumPartial(path string) (uint32, error) {
	rd, err := f.fs.Open(path)
	if err != nil {
		return 0, err
	}
	defer rd.Close()
	h := crc32.NewIEEE()
	if _, err := io.Copy(h, rd); err != nil {
		return 0, err
	}
	return h.Sum32(), nil
}

func readAllFile(fs wal.FS, path string) ([]byte, error) {
	rd, err := fs.Open(path)
	if err != nil {
		return nil, err
	}
	defer rd.Close()
	return io.ReadAll(rd)
}
