package replica

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/tdgraph/tdgraph/internal/serve"
	"github.com/tdgraph/tdgraph/internal/stats"
	"github.com/tdgraph/tdgraph/internal/wal"
)

// manualClock is a waiter-aware fake clock: Sleep blocks on a condition
// variable until Advance moves the hand past the wake time, so timer
// tests run with no real sleeps at all. Its epoch sits far in the real
// future, which keeps net.Conn deadlines derived from it (net.Pipe
// compares them against the real wall clock) from ever firing.
type manualClock struct {
	mu        sync.Mutex
	cond      *sync.Cond
	now       time.Time
	deadlines []time.Time // wake times of currently parked sleepers
}

func newManualClock() *manualClock {
	c := &manualClock{now: time.Unix(1<<41, 0)}
	c.cond = sync.NewCond(&c.mu)
	return c
}

func (c *manualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *manualClock) Sleep(ctx context.Context, d time.Duration) error {
	c.mu.Lock()
	deadline := c.now.Add(d)
	c.deadlines = append(c.deadlines, deadline)
	c.cond.Broadcast()
	stop := context.AfterFunc(ctx, c.cond.Broadcast)
	defer stop()
	for c.now.Before(deadline) && ctx.Err() == nil {
		c.cond.Wait()
	}
	for i, dl := range c.deadlines {
		if dl.Equal(deadline) {
			c.deadlines = append(c.deadlines[:i], c.deadlines[i+1:]...)
			break
		}
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	return ctx.Err()
}

// Advance moves the hand and wakes every sleeper due by the new time.
func (c *manualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.cond.Broadcast()
	c.mu.Unlock()
}

// awaitPendingSleeper blocks (on the condition variable, never real
// time) until some goroutine is parked in Sleep with a wake time still
// ahead of the hand — i.e. the state machine has finished reacting to
// every instant already released and is genuinely waiting for time.
func (c *manualClock) awaitPendingSleeper() {
	c.mu.Lock()
	for !c.havePendingLocked() {
		c.cond.Wait()
	}
	c.mu.Unlock()
}

func (c *manualClock) havePendingLocked() bool {
	for _, dl := range c.deadlines {
		if dl.After(c.now) {
			return true
		}
	}
	return false
}

// step waits for a pending sleeper and then jumps the hand exactly to
// the earliest pending wake time — one timer firing, no real sleeps.
func (c *manualClock) step() {
	c.mu.Lock()
	for {
		var next time.Time
		for _, dl := range c.deadlines {
			if dl.After(c.now) && (next.IsZero() || dl.Before(next)) {
				next = dl
			}
		}
		if !next.IsZero() {
			c.now = next
			c.cond.Broadcast()
			c.mu.Unlock()
			return
		}
		c.cond.Wait()
	}
}

// driveUntil fires fake timers one at a time until the predicate holds,
// failing the test after a generous bound.
func driveUntil(t *testing.T, clk *manualClock, what string, pred func() bool) {
	t.Helper()
	for i := 0; i < 10000; i++ {
		if pred() {
			return
		}
		clk.step()
	}
	t.Fatalf("state machine never reached: %s", what)
}

// memNet is an in-memory dial fabric: each address maps to a Node whose
// HandleConn is spawned per dialed connection, and addresses can be
// taken down to simulate dead or unreachable members — refusing new
// dials and severing every connection already made to them, the way a
// crashed process drops its sockets.
type memNet struct {
	mu    sync.Mutex
	nodes map[string]*Node
	down  map[string]bool
	conns map[string][]net.Conn
}

func newMemNet() *memNet {
	return &memNet{
		nodes: make(map[string]*Node),
		down:  make(map[string]bool),
		conns: make(map[string][]net.Conn),
	}
}

func (m *memNet) add(addr string, n *Node) {
	m.mu.Lock()
	m.nodes[addr] = n
	m.down[addr] = false
	m.mu.Unlock()
}

func (m *memNet) setDown(addr string, down bool) {
	m.mu.Lock()
	m.down[addr] = down
	var sever []net.Conn
	if down {
		sever = m.conns[addr]
		m.conns[addr] = nil
	}
	m.mu.Unlock()
	for _, c := range sever {
		c.Close()
	}
}

func (m *memNet) dial(addr string) (net.Conn, error) {
	m.mu.Lock()
	n, ok := m.nodes[addr]
	down := m.down[addr]
	m.mu.Unlock()
	if !ok || down {
		return nil, errors.New("memnet: unreachable " + addr)
	}
	a, b := net.Pipe()
	m.mu.Lock()
	m.conns[addr] = append(m.conns[addr], a)
	m.mu.Unlock()
	go n.HandleConn(b)
	return a, nil
}

func newTestNode(t *testing.T, fabric *memNet, addr string, peers []string, clk *manualClock) *Node {
	t.Helper()
	w := testWorkload(t, 4)
	cfg := nodeConfig(w, t.TempDir())
	cfg.CheckpointEvery = -1
	n, err := NewNode(NodeConfig{
		Addr:           addr,
		Peers:          peers,
		Dial:           fabric.dial,
		Pipeline:       cfg,
		HeartbeatEvery: time.Second,
		Seed:           42,
		Clock:          clk,
	})
	if err != nil {
		t.Fatalf("NewNode(%s): %v", addr, err)
	}
	if fabric != nil {
		fabric.add(addr, n)
	}
	return n
}

// TestNodeSingleMemberElectsItself: a lone member's lease expires, it
// stands, wins trivially (quorum 1), and leads — all on the fake clock.
func TestNodeSingleMemberElectsItself(t *testing.T) {
	clk := newManualClock()
	n := newTestNode(t, newMemNet(), "a", nil, clk)
	defer n.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ran := make(chan error, 1)
	go func() { ran <- n.Run(ctx) }()

	driveUntil(t, clk, "leader role", func() bool { return n.Role() == RoleLeader })

	if got := n.Term(); got != 1 {
		t.Fatalf("elected term = %d, want 1", got)
	}
	if got := n.LeaderAddr(); got != "a" {
		t.Fatalf("leader addr = %q, want self", got)
	}
	col := n.Follower().Pipeline().Collector()
	if got := col.Get(stats.CtrReplHeartbeatsMissed); got != 1 {
		t.Fatalf("heartbeats missed = %d, want 1", got)
	}
	if got := col.Get(stats.CtrReplElections); got != 1 {
		t.Fatalf("elections = %d, want 1", got)
	}
	cancel()
	if err := <-ran; !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
}

// TestNodeLeaseRenewalSuppressesElection: as long as liveness arrives
// inside the lease window the follower never stands; once heartbeats
// stop the lease expires, the node turns candidate, and with its single
// peer unreachable it keeps losing quorum without ever claiming a term.
func TestNodeLeaseRenewalSuppressesElection(t *testing.T) {
	clk := newManualClock()
	fabric := newMemNet()
	n := newTestNode(t, fabric, "a", []string{"b"}, clk)
	defer n.Close()
	fabric.setDown("b", true)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go n.Run(ctx)

	col := n.Follower().Pipeline().Collector()
	// Heartbeat at twice the leader cadence for a while: the lease
	// (4 heartbeats) never comes close to expiring.
	for i := 0; i < 10; i++ {
		clk.awaitPendingSleeper()
		clk.Advance(2 * time.Second)
		n.noteLiveness(n.Term())
	}
	if got := n.Role(); got != RoleFollower {
		t.Fatalf("role under live heartbeats = %s, want follower", got)
	}
	if got := col.Get(stats.CtrReplHeartbeatsMissed); got != 0 {
		t.Fatalf("heartbeats missed under live lease = %d, want 0", got)
	}
	if got := col.Get(stats.CtrReplElections); got != 0 {
		t.Fatalf("elections under live lease = %d, want 0", got)
	}

	// Silence. The lease runs out and the node stands — but its only
	// peer is unreachable, so every round fails the quorum check and it
	// must neither promote nor adopt a term.
	driveUntil(t, clk, "candidacy after silence", func() bool {
		return col.Get(stats.CtrReplElections) >= 2
	})
	if got := n.Role(); got != RoleCandidate {
		t.Fatalf("role after quorum-less elections = %s, want candidate", got)
	}
	if got := col.Get(stats.CtrReplHeartbeatsMissed); got == 0 {
		t.Fatal("lease expiry was never counted")
	}
	if got := n.Follower().Term(); got != 0 {
		t.Fatalf("durable term after quorum-less elections = %d, want 0", got)
	}

	// The peer comes back (as a reachable, empty follower): the very
	// next round reaches quorum and this node claims term 1.
	peer := newTestNode(t, fabric, "b", []string{"a"}, clk)
	defer peer.Close()
	fabric.setDown("b", false)
	driveUntil(t, clk, "victory once quorum is reachable", func() bool {
		return n.Role() == RoleLeader
	})
	if got := n.Term(); got != 1 {
		t.Fatalf("elected term = %d, want 1", got)
	}
}

// TestElectionDefersToMoreCurrentPeer: the up-to-dateness comparison.
// A candidate whose log is shorter loses to the longer peer; the longer
// peer wins; and once a leader exists, later candidacies defer to it
// via the lease-scoped hint rather than fighting.
func TestElectionDefersToMoreCurrentPeer(t *testing.T) {
	clk := newManualClock()
	fabric := newMemNet()
	w := testWorkload(t, 4)
	a := newTestNode(t, fabric, "a", []string{"b"}, clk)
	defer a.Close()
	b := newTestNode(t, fabric, "b", []string{"a"}, clk)
	defer b.Close()

	// b holds three batches that a never saw.
	for _, batch := range w.Batches[:3] {
		if err := b.Follower().Pipeline().Ingest(batch); err != nil {
			t.Fatal(err)
		}
	}

	err := a.electOnce()
	if !errors.Is(err, ErrElectionLost) {
		t.Fatalf("short-log candidacy: got %v, want ErrElectionLost", err)
	}
	if a.Role() == RoleLeader || a.Follower().Term() != 0 {
		t.Fatal("losing candidate must not claim a term")
	}

	if err := b.electOnce(); err != nil {
		t.Fatalf("most-current candidacy: %v", err)
	}
	if b.Role() != RoleLeader || b.Term() != 1 {
		t.Fatalf("winner: role %s term %d, want leader at term 1", b.Role(), b.Term())
	}

	// a stands again: b answers its probe naming itself leader, and a
	// defers to the live leader instead of bidding the term up.
	err = a.electOnce()
	if !errors.Is(err, ErrElectionLost) {
		t.Fatalf("candidacy against a live leader: got %v, want ErrElectionLost", err)
	}

	// With b gone, a cannot reach a quorum and must not self-promote.
	fabric.setDown("b", true)
	err = a.electOnce()
	if !errors.Is(err, ErrQuorumLost) {
		t.Fatalf("partitioned candidacy: got %v, want ErrQuorumLost", err)
	}
}

// TestElectionSplayIsSeeded: the pre-candidacy wait is drawn from the
// node's seeded generator — reproducible per node, different across
// addresses — so identically configured members race deterministically.
func TestElectionSplayIsSeeded(t *testing.T) {
	clk := newManualClock()
	mk := func(addr string) *Node {
		return newTestNode(t, newMemNet(), addr, []string{"x"}, clk)
	}
	a1, a2, b := mk("a"), mk("a"), mk("b")
	defer a1.Close()
	defer a2.Close()
	defer b.Close()
	var s1, s2, s3 []time.Duration
	for i := 0; i < 8; i++ {
		s1 = append(s1, a1.electionSplay())
		s2 = append(s2, a2.electionSplay())
		s3 = append(s3, b.electionSplay())
	}
	same, diff := true, false
	for i := range s1 {
		same = same && s1[i] == s2[i]
		diff = diff || s1[i] != s3[i]
		lo, hi := 500*time.Millisecond, 2*time.Second
		if s1[i] < lo || s1[i] >= hi {
			t.Fatalf("splay %v outside [%v, %v)", s1[i], lo, hi)
		}
	}
	if !same {
		t.Fatalf("same seed and address drew different splays: %v vs %v", s1, s2)
	}
	if !diff {
		t.Fatalf("different addresses drew identical splays: %v", s1)
	}
}

// TestNodeDeposedLeaderAutoDemotes: a leader whose follower half
// durably adopts a higher term has been deposed and must step down on
// its own — uninstall the primary, count the demotion, and follow the
// new authority.
func TestNodeDeposedLeaderAutoDemotes(t *testing.T) {
	clk := newManualClock()
	n := newTestNode(t, newMemNet(), "a", nil, clk)
	defer n.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go n.Run(ctx)
	driveUntil(t, clk, "initial leadership", func() bool { return n.Role() == RoleLeader })

	// A rival primary at a higher term opens a replication session.
	pside, nside := net.Pipe()
	sess := make(chan error, 1)
	go func() { sess <- n.HandleConn(nside) }()
	if err := WriteFrame(pside, Frame{Type: FrameHello, Term: 5, Payload: []byte("b")}); err != nil {
		t.Fatal(err)
	}
	if fr, err := ReadFrame(pside); err != nil || fr.Type != FrameWelcome {
		t.Fatalf("rival handshake: %+v, %v", fr, err)
	}
	pside.Close()
	<-sess

	if got := n.Role(); got != RoleFollower {
		t.Fatalf("deposed role = %s, want follower", got)
	}
	if got := n.Term(); got != 5 {
		t.Fatalf("deposed term = %d, want 5", got)
	}
	if got := n.LeaderAddr(); got != "b" {
		t.Fatalf("deposed leader hint = %q, want the rival", got)
	}
	col := n.Follower().Pipeline().Collector()
	if got := col.Get(stats.CtrReplDemotions); got != 1 {
		t.Fatalf("demotions = %d, want 1", got)
	}
	// The demoted node keeps running as a follower: silence from the
	// rival expires the lease and it stands again at a higher term.
	driveUntil(t, clk, "re-candidacy after demotion", func() bool {
		return n.Role() == RoleLeader
	})
	if got := n.Term(); got != 6 {
		t.Fatalf("re-elected term = %d, want 6", got)
	}
}

// TestNodeRejoinReseedsDivergedMember: a member whose log was stamped
// under an old authority rejoins a cluster whose leader's ledger
// disagrees over their shared prefix. The leader detects the divergence
// at attach, ships its newest checkpoint through the PR 7 reseed path
// (auto-wired by NewNode from the pipeline's own checkpoints), and the
// member converges to the leader's exact states — all on the fake
// clock, with no operator involvement.
func TestNodeRejoinReseedsDivergedMember(t *testing.T) {
	clk := newManualClock()
	fabric := newMemNet()
	w := testWorkload(t, 6)
	want := referenceStates(t, w)

	// x's first life: three batches adopted under term 2, no
	// checkpoints of its own.
	xdir := t.TempDir()
	{
		cfg := nodeConfig(w, xdir)
		cfg.CheckpointEvery = -1
		fl, err := NewFollower(FollowerConfig{Pipeline: cfg})
		if err != nil {
			t.Fatal(err)
		}
		feedFollower(t, fl, w, 2, 0, 3)
		fl.Pipeline().Close()
	}
	// l's richer life: all six batches under term 5, checkpointing as
	// it goes — its ledger says the shared prefix originated at term 5,
	// so x's term-2 stamps mark x diverged, not merely behind.
	ldir := t.TempDir()
	{
		fl, err := NewFollower(FollowerConfig{Pipeline: nodeConfig(w, ldir)})
		if err != nil {
			t.Fatal(err)
		}
		feedFollower(t, fl, w, 5, 0, 6)
		fl.Pipeline().Close()
	}

	mk := func(addr, peer string, cfg serve.PipelineConfig) *Node {
		n, err := NewNode(NodeConfig{
			Addr: addr, Peers: []string{peer}, Dial: fabric.dial,
			Pipeline: cfg, HeartbeatEvery: time.Second, Seed: 42, Clock: clk,
		})
		if err != nil {
			t.Fatalf("NewNode(%s): %v", addr, err)
		}
		fabric.add(addr, n)
		return n
	}
	xcfg := nodeConfig(w, xdir)
	xcfg.CheckpointEvery = -1
	x := mk("x", "l", xcfg)
	defer x.Close()
	l := mk("l", "x", nodeConfig(w, ldir))
	defer l.Close()

	// Only l drives a role loop; x serves inbound connections the way
	// any member does, so the rejoin is entirely leader-initiated.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go l.Run(ctx)

	driveUntil(t, clk, "leader elected and diverged member reseeded", func() bool {
		return l.Role() == RoleLeader && x.Follower().Seq() == 6
	})

	if got := l.Term(); got != 6 {
		t.Fatalf("leader term = %d, want 6 (one past the richest probed term)", got)
	}
	if got := x.Follower().Term(); got != 6 {
		t.Fatalf("rejoined member term = %d, want the leader's 6", got)
	}
	lcol := l.Follower().Pipeline().Collector()
	xcol := x.Follower().Pipeline().Collector()
	if got := lcol.Get(stats.CtrReplReseedOffers); got != 1 {
		t.Fatalf("leader reseed offers = %d, want 1", got)
	}
	if got := xcol.Get(stats.CtrReplReseedInstalls); got != 1 {
		t.Fatalf("member reseed installs = %d, want 1", got)
	}
	// Quiesce before reading states: Close joins x's replication
	// session, which may still be applying the last caught-up record.
	cancel()
	l.Close()
	x.Close()
	if !statesEqual(x.Follower().Pipeline().Session().States(), want) {
		t.Fatal("reseeded member states diverged from the reference")
	}
}

// TestNodeStrandedIngestNeverAcked pins the durable-prefix contract: a
// client batch that reaches the leader's WAL but loses its replication
// quorum must never be advertised as durable. The leader steps down on
// the spot and the refusal (like any later Welcome from it) reports
// only the quorum-acknowledged prefix — so the client resubmits the
// batch to the next leader instead of counting it durable and silently
// losing it when the stranded tail is reseeded away.
func TestNodeStrandedIngestNeverAcked(t *testing.T) {
	clk := newManualClock()
	fabric := newMemNet()
	n := newTestNode(t, fabric, "a", []string{"b", "c"}, clk)
	defer n.Close()
	b := newTestNode(t, fabric, "b", []string{"a", "c"}, clk)
	defer b.Close()
	c := newTestNode(t, fabric, "c", []string{"a", "b"}, clk)
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go n.Run(ctx)
	// Both followers durably adopting the claimed term means both
	// replication sessions are attached and counting toward quorum.
	driveUntil(t, clk, "leadership with both followers attached", func() bool {
		return n.Role() == RoleLeader && b.Follower().Term() == 1 && c.Follower().Term() == 1
	})

	// Sever both followers: the next ingest appends to the local WAL,
	// then fails to assemble its replication quorum.
	fabric.setDown("b", true)
	fabric.setDown("c", true)

	conn, err := fabric.dial("a")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteFrame(conn, Frame{Type: FrameClientHello}); err != nil {
		t.Fatal(err)
	}
	fr, err := ReadFrame(conn)
	if err != nil || fr.Type != FrameWelcome || fr.Seq != 0 {
		t.Fatalf("handshake: %+v, %v, want a Welcome at seq 0", fr, err)
	}
	w := testWorkload(t, 4)
	if err := WriteFrame(conn, Frame{Type: FrameSubmit, Seq: 1, Payload: wal.EncodeBatch(w.Batches[0])}); err != nil {
		t.Fatal(err)
	}
	fr, err = ReadFrame(conn)
	if err != nil || fr.Type != FrameReject {
		t.Fatalf("quorum-lost submit: %+v, %v, want a refusal", fr, err)
	}

	// The batch is stranded in the WAL (log end 1) but was never
	// acknowledged; the node must have stepped down rather than keep
	// promising durability it cannot deliver.
	if got := n.Follower().Seq(); got != 1 {
		t.Fatalf("local log end = %d, want the stranded batch at 1", got)
	}
	if got := n.Role(); got == RoleLeader {
		t.Fatal("leader kept serving after stranding a batch")
	}
	col := n.Follower().Pipeline().Collector()
	if got := col.Get(stats.CtrReplDemotions); got != 1 {
		t.Fatalf("demotions = %d, want 1", got)
	}

	// A reconnecting client must be refused — never Welcomed with the
	// never-quorum-acked sequence.
	conn2, err := fabric.dial("a")
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if err := WriteFrame(conn2, Frame{Type: FrameClientHello}); err != nil {
		t.Fatal(err)
	}
	fr, err = ReadFrame(conn2)
	if err != nil || fr.Type != FrameReject {
		t.Fatalf("post-demote handshake: %+v, %v, want a refusal", fr, err)
	}
}

// TestNodeIsolatedLeaderStepsDown: a leader that cannot deliver
// heartbeats to any follower for a full lease demotes itself rather
// than serving the minority side of a partition.
func TestNodeIsolatedLeaderStepsDown(t *testing.T) {
	clk := newManualClock()
	fabric := newMemNet()
	n := newTestNode(t, fabric, "a", []string{"b", "c"}, clk)
	defer n.Close()
	b := newTestNode(t, fabric, "b", []string{"a", "c"}, clk)
	defer b.Close()
	c := newTestNode(t, fabric, "c", []string{"a", "b"}, clk)
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go n.Run(ctx)
	// b and c do not run their own loops here: this test isolates a's
	// step-down, not the rival election.
	driveUntil(t, clk, "leadership over b and c", func() bool { return n.Role() == RoleLeader })

	col := n.Follower().Pipeline().Collector()
	sent := col.Get(stats.CtrReplHeartbeatsSent)
	driveUntil(t, clk, "heartbeats flowing", func() bool {
		return col.Get(stats.CtrReplHeartbeatsSent) > sent+4
	})
	if got := n.Role(); got != RoleLeader {
		t.Fatalf("role while quorum reachable = %s, want leader", got)
	}

	// Total isolation: every heartbeat round now reaches 1 of 2.
	fabric.setDown("b", true)
	fabric.setDown("c", true)
	driveUntil(t, clk, "step-down after isolation", func() bool {
		return n.Role() != RoleLeader
	})
	if got := col.Get(stats.CtrReplDemotions); got != 1 {
		t.Fatalf("demotions = %d, want 1", got)
	}
}
