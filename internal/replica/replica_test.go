package replica

import (
	"errors"
	"math"
	"net"
	"path/filepath"
	"sync"
	"testing"

	tdgraph "github.com/tdgraph/tdgraph"
	"github.com/tdgraph/tdgraph/internal/fault"
	"github.com/tdgraph/tdgraph/internal/graph"
	"github.com/tdgraph/tdgraph/internal/serve"
	"github.com/tdgraph/tdgraph/internal/stats"
	"github.com/tdgraph/tdgraph/internal/stream"
	"github.com/tdgraph/tdgraph/internal/wal"
)

// testWorkload mirrors the serve suite's deterministic streaming run.
func testWorkload(t *testing.T, nBatches int) *stream.Workload {
	t.Helper()
	const nv = 64
	edges := make([]graph.Edge, 0, 320)
	for i := 0; i < 320; i++ {
		src := uint32((i * 7) % nv)
		dst := uint32((i*13 + 5) % nv)
		if src == dst {
			dst = (dst + 1) % nv
		}
		edges = append(edges, graph.Edge{Src: src, Dst: dst, Weight: float32(1 + i%9)})
	}
	return stream.Build(edges, nv, stream.Config{
		WarmupFraction: 0.5,
		BatchSize:      20,
		AddFraction:    0.75,
		NumBatches:     nBatches,
		Seed:           11,
	})
}

func bootstrapFrom(w *stream.Workload) func() (*tdgraph.Session, error) {
	return func() (*tdgraph.Session, error) {
		return tdgraph.NewSession(tdgraph.NewSSSP(0), w.Warmup, w.NumVertices, tdgraph.SessionOptions{})
	}
}

// nodeConfig builds a pipeline config rooted at dir, so a node can be
// "restarted" by building another config over the same directories.
func nodeConfig(w *stream.Workload, dir string) serve.PipelineConfig {
	return serve.PipelineConfig{
		Bootstrap:       bootstrapFrom(w),
		Algorithm:       tdgraph.NewSSSP(0),
		WAL:             wal.Options{Dir: dir, Sync: wal.SyncEachBatch, SegmentBytes: 4096},
		CheckpointPath:  filepath.Join(dir, "ckpt.tds"),
		CheckpointEvery: 3,
	}
}

func statesEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func referenceStates(t *testing.T, w *stream.Workload) []float64 {
	t.Helper()
	s, err := bootstrapFrom(w)()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range w.Batches {
		if _, err := s.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	return append([]float64(nil), s.States()...)
}

// startFollower builds a follower over dir and serves one session on a
// fresh pipe, returning the primary-side conn and the session result.
func startFollower(t *testing.T, w *stream.Workload, dir string) (*Follower, net.Conn, chan error) {
	t.Helper()
	fl, err := NewFollower(FollowerConfig{Pipeline: nodeConfig(w, dir)})
	if err != nil {
		t.Fatalf("NewFollower: %v", err)
	}
	pside, fside := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- fl.Serve(fside) }()
	return fl, pside, done
}

// asyncConn decouples Write from the peer's reads with an unbounded
// in-order queue, giving net.Pipe the buffering a kernel TCP socket
// has — needed when a fault class (dup) makes one logical frame
// produce several writes before the peer drains any.
type asyncConn struct {
	net.Conn
	mu     sync.Mutex
	cond   *sync.Cond
	queue  [][]byte
	closed bool
}

func newAsyncConn(c net.Conn) *asyncConn {
	a := &asyncConn{Conn: c}
	a.cond = sync.NewCond(&a.mu)
	go a.pump()
	return a
}

func (a *asyncConn) pump() {
	for {
		a.mu.Lock()
		for len(a.queue) == 0 && !a.closed {
			a.cond.Wait()
		}
		if len(a.queue) == 0 && a.closed {
			a.mu.Unlock()
			a.Conn.Close()
			return
		}
		buf := a.queue[0]
		a.queue = a.queue[1:]
		a.mu.Unlock()
		if _, err := a.Conn.Write(buf); err != nil {
			return
		}
	}
}

func (a *asyncConn) Write(p []byte) (int, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return 0, net.ErrClosed
	}
	a.queue = append(a.queue, append([]byte(nil), p...))
	a.cond.Signal()
	return len(p), nil
}

func (a *asyncConn) Close() error {
	a.mu.Lock()
	a.closed = true
	a.cond.Signal()
	a.mu.Unlock()
	return nil
}

// TestReplicatedIngestReachesQuorum: a primary with two followers
// drives the full workload; all three replicas end with states
// byte-identical to the uninterrupted reference.
func TestReplicatedIngestReachesQuorum(t *testing.T) {
	w := testWorkload(t, 8)
	want := referenceStates(t, w)

	pdir := t.TempDir()
	pcfg := nodeConfig(w, pdir)
	col := stats.NewCollector()
	pcfg.Collector = col

	f1, c1, d1 := startFollower(t, w, t.TempDir())
	f2, c2, d2 := startFollower(t, w, t.TempDir())

	prim := NewPrimary(PrimaryConfig{Term: 1, ClusterSize: 3, WAL: pcfg.WAL, Collector: col})
	if _, err := ClaimTerm(wal.Options{Dir: pdir}, 1); err != nil {
		t.Fatal(err)
	}
	if err := prim.AddFollower(c1); err != nil {
		t.Fatal(err)
	}
	if err := prim.AddFollower(c2); err != nil {
		t.Fatal(err)
	}
	pcfg.Replicator = prim
	pipe, err := serve.NewPipeline(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range w.Batches {
		if err := pipe.Ingest(b); err != nil {
			t.Fatalf("Ingest %d: %v", i, err)
		}
	}
	if err := pipe.Close(); err != nil {
		t.Fatal(err)
	}
	prim.Close()
	<-d1
	<-d2

	n := uint64(len(w.Batches))
	if f1.Seq() != n || f2.Seq() != n {
		t.Fatalf("followers at seq %d/%d, want %d", f1.Seq(), f2.Seq(), n)
	}
	if !statesEqual(pipe.Session().States(), want) {
		t.Fatal("primary states diverged from reference")
	}
	if !statesEqual(f1.Pipeline().Session().States(), want) {
		t.Fatal("follower 1 states diverged from reference")
	}
	if !statesEqual(f2.Pipeline().Session().States(), want) {
		t.Fatal("follower 2 states diverged from reference")
	}
	if got := col.Get(stats.CtrReplAcks); got != 2*n {
		t.Fatalf("acks counter = %d, want %d", got, 2*n)
	}
	if col.Get(stats.CtrReplShippedRecords) != 2*n {
		t.Fatalf("shipped counter = %d, want %d", col.Get(stats.CtrReplShippedRecords), 2*n)
	}
	// Lag is measured before shipping closes the gap: an in-step
	// follower trails by exactly the record being replicated, never 0
	// (that would mean the gauge measures after catch-up) and never an
	// underflowed huge value.
	if got := col.Get(stats.CtrReplLag); got != 1 {
		t.Fatalf("lag gauge = %d, want 1", got)
	}
	f1.Pipeline().Close()
	f2.Pipeline().Close()
}

// TestLateJoinerCatchesUpFromWAL: a follower attached mid-stream is
// fed the backlog from the primary's WAL segments before live records.
func TestLateJoinerCatchesUpFromWAL(t *testing.T) {
	w := testWorkload(t, 8)
	want := referenceStates(t, w)

	pdir := t.TempDir()
	col := stats.NewCollector()
	pcfg := nodeConfig(w, pdir)
	pcfg.Collector = col
	// Keep the whole log so catch-up can reach back to seq 1.
	pcfg.CheckpointEvery = -1

	f1, c1, d1 := startFollower(t, w, t.TempDir())
	prim := NewPrimary(PrimaryConfig{Term: 1, ClusterSize: 2, WAL: pcfg.WAL, Collector: col})
	if err := prim.AddFollower(c1); err != nil {
		t.Fatal(err)
	}
	pcfg.Replicator = prim
	pipe, err := serve.NewPipeline(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range w.Batches[:5] {
		if err := pipe.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}

	// Late joiner: handshakes at seq 0, catches up on the next ingest.
	f2, c2, d2 := startFollower(t, w, t.TempDir())
	if err := prim.AddFollower(c2); err != nil {
		t.Fatal(err)
	}
	for _, b := range w.Batches[5:] {
		if err := pipe.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := pipe.Close(); err != nil {
		t.Fatal(err)
	}
	prim.Close()
	<-d1
	<-d2

	if !statesEqual(f2.Pipeline().Session().States(), want) {
		t.Fatal("late joiner states diverged from reference")
	}
	if got := col.Get(stats.CtrReplCatchupRecords); got != 5 {
		t.Fatalf("catch-up records = %d, want 5", got)
	}
	f1.Pipeline().Close()
	f2.Pipeline().Close()
}

// TestDuplicatedFramesReAcked: a wire that duplicates every frame
// still converges — followers re-ack duplicates without re-applying,
// and the primary skips stale acks.
func TestDuplicatedFramesReAcked(t *testing.T) {
	w := testWorkload(t, 6)
	want := referenceStates(t, w)

	pdir := t.TempDir()
	col := stats.NewCollector()
	pcfg := nodeConfig(w, pdir)
	pcfg.Collector = col

	fl, err := NewFollower(FollowerConfig{Pipeline: nodeConfig(w, t.TempDir())})
	if err != nil {
		t.Fatal(err)
	}
	pside, fside := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- fl.Serve(fside) }()

	inj := fault.New(99)
	lossy := inj.Conn(newAsyncConn(pside))

	prim := NewPrimary(PrimaryConfig{Term: 1, ClusterSize: 2, WAL: pcfg.WAL, Collector: col})
	if err := prim.AddFollower(lossy); err != nil {
		t.Fatal(err)
	}
	// Arm after the handshake: from here every primary→follower frame
	// is sent twice.
	inj.Arm(fault.NetDup, 1)
	pcfg.Replicator = prim
	pipe, err := serve.NewPipeline(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range w.Batches {
		if err := pipe.Ingest(b); err != nil {
			t.Fatalf("Ingest %d under dup wire: %v", i, err)
		}
	}
	if err := pipe.Close(); err != nil {
		t.Fatal(err)
	}
	prim.Close()
	<-done

	if !statesEqual(fl.Pipeline().Session().States(), want) {
		t.Fatal("follower states diverged under duplicated frames")
	}
	if fl.Pipeline().Collector().Get(stats.CtrReplDupFrames) == 0 {
		t.Fatal("dup-frame counter never incremented")
	}
	fl.Pipeline().Close()
}

// TestQuorumLostHaltsPrimary: when every follower is gone, Ingest
// fails with stage "replicate" wrapping ErrQuorumLost and the batch is
// never acknowledged.
func TestQuorumLostHaltsPrimary(t *testing.T) {
	w := testWorkload(t, 4)
	pdir := t.TempDir()
	pcfg := nodeConfig(w, pdir)

	f1, c1, d1 := startFollower(t, w, t.TempDir())
	prim := NewPrimary(PrimaryConfig{Term: 1, ClusterSize: 3, WAL: pcfg.WAL})
	if err := prim.AddFollower(c1); err != nil {
		t.Fatal(err)
	}
	pcfg.Replicator = prim
	pipe, err := serve.NewPipeline(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := pipe.Ingest(w.Batches[0]); err != nil {
		t.Fatalf("ingest with quorum: %v", err)
	}

	// The lone follower dies: quorum (2 of 3) is unreachable.
	c1.Close()
	<-d1
	err = pipe.Ingest(w.Batches[1])
	var ie *serve.IngestError
	if !errors.As(err, &ie) || ie.Stage != "replicate" {
		t.Fatalf("want IngestError stage replicate, got %v", err)
	}
	if !errors.Is(err, ErrQuorumLost) {
		t.Fatalf("want ErrQuorumLost in chain, got %v", err)
	}
	if errors.Is(err, serve.ErrFenced) {
		t.Fatal("quorum loss must not read as fencing")
	}
	f1.Pipeline().Close()
	prim.Close()
}
