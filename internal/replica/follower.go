package replica

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"github.com/tdgraph/tdgraph/internal/serve"
	"github.com/tdgraph/tdgraph/internal/stats"
	"github.com/tdgraph/tdgraph/internal/wal"
)

// FollowerConfig parameterises the receiving side.
type FollowerConfig struct {
	// Pipeline is the follower's own durable pipeline configuration —
	// the same shape a solo server uses, so promotion is just "start
	// serving". The WAL sync policy is forced to SyncEachBatch: an
	// acknowledgement must mean fsynced, whatever the config says.
	Pipeline serve.PipelineConfig
	// OnEvent receives one line per notable event (nil discards).
	OnEvent func(string)
}

// Follower applies replicated batches through its own serve.Pipeline —
// WAL append, fsync, live apply path — and acknowledges each only
// after all three, so a primary counting its ack counts a replica that
// could be promoted this instant. Recovery after a follower crash is
// the pipeline's ordinary recovery; nothing replication-specific
// survives a restart except the durable term.
type Follower struct {
	mu    sync.Mutex
	cfg   FollowerConfig
	pipe  *serve.Pipeline
	col   *stats.Collector
	fs    wal.FS
	dir   string
	state TermState
}

// NewFollower recovers the follower's durable state (checkpoint + WAL
// replay + stored term) and returns it ready to Serve.
func NewFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.OnEvent == nil {
		cfg.OnEvent = func(string) {}
	}
	// Ack honesty: every acknowledged record must be on the platter.
	cfg.Pipeline.WAL.Sync = wal.SyncEachBatch
	pipe, err := serve.NewPipeline(cfg.Pipeline)
	if err != nil {
		return nil, err
	}
	fs := cfg.Pipeline.WAL.FS
	if fs == nil {
		fs = wal.OSFS{}
	}
	state, err := LoadTermState(fs, cfg.Pipeline.WAL.Dir)
	if err != nil {
		pipe.Close()
		return nil, err
	}
	return &Follower{
		cfg:   cfg,
		pipe:  pipe,
		col:   pipe.Collector(),
		fs:    fs,
		dir:   cfg.Pipeline.WAL.Dir,
		state: state,
	}, nil
}

// Pipeline exposes the follower's pipeline (states, stats, Close).
func (f *Follower) Pipeline() *serve.Pipeline { return f.pipe }

// Seq returns the follower's last durable-and-applied sequence.
func (f *Follower) Seq() uint64 { return f.pipe.Seq() }

// Term returns the highest term this follower has durably accepted.
func (f *Follower) Term() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.state.Term
}

// Serve runs one replication session on conn until the primary
// disconnects (nil), the transport dies (the I/O error), or the
// session must end for protocol reasons (ErrStaleTerm when the primary
// is deposed, ErrFollowerBehind on a sequence gap, ErrFollowerDiverged
// when the primary refuses this replica's log). It blocks the calling
// goroutine; sessions are serialised, and Promote excludes them.
//
// A session must claim a term *strictly greater* than any this
// follower has adopted. Equal is rejected too: terms are unique by
// construction (a primary claims max-of-probed+1), so a second Hello
// at an already-adopted term is another process racing for the same
// authority — accepting both is exactly the split brain fencing
// exists to prevent.
func (f *Follower) Serve(conn net.Conn) error {
	f.mu.Lock()
	defer f.mu.Unlock()

	// Answer probes (term discovery by a starting primary) until a
	// session opens; probing adopts nothing.
	var hello Frame
	for {
		fr, err := ReadFrame(conn)
		if err != nil {
			return err
		}
		if fr.Type == FrameProbe {
			if err := WriteFrame(conn, Frame{
				Type: FrameState, Term: f.state.Term, Seq: f.pipe.Seq(),
				Orig: f.state.At(f.pipe.Seq()),
			}); err != nil {
				return err
			}
			continue
		}
		if fr.Type != FrameHello {
			return &FrameError{Reason: "handshake",
				Err: fmt.Errorf("%w: unexpected frame type %d", ErrBadFrame, fr.Type)}
		}
		hello = fr
		break
	}
	if hello.Term <= f.state.Term {
		f.col.Inc(stats.CtrReplFenceRejects)
		f.cfg.OnEvent(fmt.Sprintf("rejected primary with stale term %d (ours %d)", hello.Term, f.state.Term))
		WriteFrame(conn, Frame{Type: FrameReject, Term: f.state.Term, Seq: f.pipe.Seq()})
		return fmt.Errorf("session with deposed primary (term %d <= %d): %w", hello.Term, f.state.Term, ErrStaleTerm)
	}
	// Durably adopt the new term before welcoming: after a crash this
	// follower must still refuse the old primary.
	adopted := f.state
	adopted.Term = hello.Term
	adopted.Ledger = append([]TermBase(nil), f.state.Ledger...)
	if err := SaveTermState(f.fs, f.dir, adopted); err != nil {
		return err
	}
	f.state = adopted
	if err := WriteFrame(conn, Frame{
		Type: FrameWelcome, Term: f.state.Term, Seq: f.pipe.Seq(),
		Orig: f.state.At(f.pipe.Seq()),
	}); err != nil {
		return err
	}

	for {
		fr, err := ReadFrame(conn)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil // primary closed the session cleanly
			}
			return err
		}
		if fr.Type == FrameReject {
			// The primary refused this replica's log at the handshake: it
			// diverges (a resurrected unacknowledged tail, typically) and
			// must be reseeded, not caught up. A primary with a snapshot
			// source sends FrameSnapOffer instead of this refusal.
			f.cfg.OnEvent(fmt.Sprintf("primary refused our log at its seq %d: reseed required", fr.Seq))
			return fmt.Errorf("%w: refused by primary at term %d (its log ends at %d, ours at %d)",
				ErrFollowerDiverged, fr.Term, fr.Seq, f.pipe.Seq())
		}
		if fr.Type == FrameSnapOffer {
			// The primary decided this replica cannot be served from its
			// log — diverged, or behind retention — and ships state
			// instead of refusing. Accepting it *is* the automatic
			// reseed: install atomically, reset the ledger to the shipped
			// history, and keep the session going; the primary resumes
			// ordinary records from the installed sequence.
			if err := f.receiveSnapshot(conn, fr); err != nil {
				return err
			}
			continue
		}
		if fr.Type != FrameRecord {
			return &FrameError{Reason: "session",
				Err: fmt.Errorf("%w: unexpected frame type %d", ErrBadFrame, fr.Type)}
		}
		if fr.Term < f.state.Term {
			// The primary was deposed mid-session (we may have adopted a
			// newer term through another session meanwhile).
			f.col.Inc(stats.CtrReplFenceRejects)
			WriteFrame(conn, Frame{Type: FrameReject, Term: f.state.Term, Seq: f.pipe.Seq()})
			return fmt.Errorf("record from deposed primary (term %d < %d): %w", fr.Term, f.state.Term, ErrStaleTerm)
		}
		switch {
		case fr.Seq <= f.pipe.Seq():
			// Duplicate (retry, or a dup-injecting wire): already durable,
			// so re-ack without re-applying.
			f.col.Inc(stats.CtrReplDupFrames)
			if err := WriteFrame(conn, Frame{Type: FrameAck, Term: f.state.Term, Seq: f.pipe.Seq()}); err != nil {
				return err
			}
		case fr.Seq > f.pipe.Seq()+1:
			// A gap: records were lost on the wire. Refuse — the primary
			// re-ships the backlog from its WAL.
			WriteFrame(conn, Frame{Type: FrameReject, Term: f.state.Term, Seq: f.pipe.Seq()})
			return fmt.Errorf("%w: got seq %d with local seq %d", ErrFollowerBehind, fr.Seq, f.pipe.Seq())
		default:
			if err := f.stampOrigin(fr); err != nil {
				WriteFrame(conn, Frame{Type: FrameReject, Term: f.state.Term, Seq: f.pipe.Seq()})
				return err
			}
			batch, err := wal.DecodeBatch(fr.Payload)
			if err != nil {
				return &FrameError{Reason: "record payload", Err: err}
			}
			if err := f.pipe.IngestReplicated(fr.Seq, batch); err != nil {
				return err
			}
			if err := WriteFrame(conn, Frame{Type: FrameAck, Term: f.state.Term, Seq: f.pipe.Seq()}); err != nil {
				return err
			}
		}
	}
}

// stampOrigin maintains the follower's term ledger as records arrive:
// the first record of each origin term opens a ledger range, persisted
// durably *before* the record itself — a crash in between leaves an
// entry whose base does not exist yet, which the next session's
// handshake simply never consults. An origin below our newest range is
// a contradiction (this primary's log attributes sequences we already
// hold to an older term than we stamped them with) and refuses the
// session rather than silently diverging. Origin 0 — un-ledgered
// history from a pre-replication log — is applied unstamped.
func (f *Follower) stampOrigin(fr Frame) error {
	tail := f.state.tail()
	switch {
	case fr.Orig == 0 || fr.Orig == tail:
		return nil
	case fr.Orig < tail:
		return fmt.Errorf("%w: record %d originates at term %d, our ledger is already at term %d",
			ErrFollowerDiverged, fr.Seq, fr.Orig, tail)
	}
	stamped := f.state
	stamped.Ledger = append([]TermBase(nil), f.state.Ledger...)
	stamped.Stamp(fr.Orig, fr.Seq)
	if err := SaveTermState(f.fs, f.dir, stamped); err != nil {
		return err
	}
	f.state = stamped
	return nil
}

// Promote turns this follower into the authority for a new term: the
// incremented term is made durable (fencing every older primary that
// later reconnects), the ledger is stamped so records the new primary
// creates are attributed to it, and the term is returned for the
// caller to serve under. The promoted log itself needs no truncation —
// every record it holds passed the frame and WAL CRCs, and an
// unacknowledged tail is simply extra batches the old primary never
// confirmed to its client — but the promotion is only safe for the
// *most-advanced* follower, and the ledger is what enforces the rest:
// any replica whose log grew past or apart from the promoted one
// (a deposed primary resurrected by WAL replay, say) presents a
// conflicting tail stamp at its next handshake and is refused with
// ErrFollowerDiverged instead of converging by catch-up. Must not run
// while a Serve session is active (it excludes them via the same
// lock).
func (f *Follower) Promote() (uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	promoted := f.state
	promoted.Ledger = append([]TermBase(nil), f.state.Ledger...)
	promoted.Term = f.state.Term + 1
	promoted.Stamp(promoted.Term, f.pipe.Seq()+1)
	if err := SaveTermState(f.fs, f.dir, promoted); err != nil {
		return 0, err
	}
	f.state = promoted
	f.col.Inc(stats.CtrReplFailovers)
	f.cfg.OnEvent(fmt.Sprintf("promoted to primary at term %d, seq %d", promoted.Term, f.pipe.Seq()))
	return promoted.Term, nil
}
