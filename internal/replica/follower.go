package replica

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"github.com/tdgraph/tdgraph/internal/serve"
	"github.com/tdgraph/tdgraph/internal/stats"
	"github.com/tdgraph/tdgraph/internal/wal"
)

// FollowerConfig parameterises the receiving side.
type FollowerConfig struct {
	// Pipeline is the follower's own durable pipeline configuration —
	// the same shape a solo server uses, so promotion is just "start
	// serving". The WAL sync policy is forced to SyncEachBatch: an
	// acknowledgement must mean fsynced, whatever the config says.
	Pipeline serve.PipelineConfig
	// OnEvent receives one line per notable event (nil discards).
	OnEvent func(string)
}

// Follower applies replicated batches through its own serve.Pipeline —
// WAL append, fsync, live apply path — and acknowledges each only
// after all three, so a primary counting its ack counts a replica that
// could be promoted this instant. Recovery after a follower crash is
// the pipeline's ordinary recovery; nothing replication-specific
// survives a restart except the durable term.
type Follower struct {
	mu   sync.Mutex
	cfg  FollowerConfig
	pipe *serve.Pipeline
	col  *stats.Collector
	fs   wal.FS
	dir  string
	term uint64
}

// NewFollower recovers the follower's durable state (checkpoint + WAL
// replay + stored term) and returns it ready to Serve.
func NewFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.OnEvent == nil {
		cfg.OnEvent = func(string) {}
	}
	// Ack honesty: every acknowledged record must be on the platter.
	cfg.Pipeline.WAL.Sync = wal.SyncEachBatch
	pipe, err := serve.NewPipeline(cfg.Pipeline)
	if err != nil {
		return nil, err
	}
	fs := cfg.Pipeline.WAL.FS
	if fs == nil {
		fs = wal.OSFS{}
	}
	term, err := LoadTerm(fs, cfg.Pipeline.WAL.Dir)
	if err != nil {
		pipe.Close()
		return nil, err
	}
	return &Follower{
		cfg:  cfg,
		pipe: pipe,
		col:  pipe.Collector(),
		fs:   fs,
		dir:  cfg.Pipeline.WAL.Dir,
		term: term,
	}, nil
}

// Pipeline exposes the follower's pipeline (states, stats, Close).
func (f *Follower) Pipeline() *serve.Pipeline { return f.pipe }

// Seq returns the follower's last durable-and-applied sequence.
func (f *Follower) Seq() uint64 { return f.pipe.Seq() }

// Term returns the highest term this follower has durably accepted.
func (f *Follower) Term() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.term
}

// Serve runs one replication session on conn until the primary
// disconnects (nil), the transport dies (the I/O error), or the
// session must end for protocol reasons (ErrStaleTerm when the primary
// is deposed, ErrFollowerBehind on a sequence gap). It blocks the
// calling goroutine; sessions are serialised, and Promote excludes
// them.
func (f *Follower) Serve(conn net.Conn) error {
	f.mu.Lock()
	defer f.mu.Unlock()

	hello, err := ReadFrame(conn)
	if err != nil {
		return err
	}
	if hello.Type != FrameHello {
		return &FrameError{Reason: "handshake",
			Err: fmt.Errorf("%w: unexpected frame type %d", ErrBadFrame, hello.Type)}
	}
	if hello.Term < f.term {
		f.col.Inc(stats.CtrReplFenceRejects)
		f.cfg.OnEvent(fmt.Sprintf("rejected primary with stale term %d (ours %d)", hello.Term, f.term))
		WriteFrame(conn, Frame{Type: FrameReject, Term: f.term, Seq: f.pipe.Seq()})
		return fmt.Errorf("session with deposed primary (term %d < %d): %w", hello.Term, f.term, ErrStaleTerm)
	}
	if hello.Term > f.term {
		// Durably adopt the new term before welcoming: after a crash this
		// follower must still refuse the old primary.
		if err := SaveTerm(f.fs, f.dir, hello.Term); err != nil {
			return err
		}
		f.term = hello.Term
	}
	if err := WriteFrame(conn, Frame{Type: FrameWelcome, Term: f.term, Seq: f.pipe.Seq()}); err != nil {
		return err
	}

	for {
		fr, err := ReadFrame(conn)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil // primary closed the session cleanly
			}
			return err
		}
		if fr.Type != FrameRecord {
			return &FrameError{Reason: "session",
				Err: fmt.Errorf("%w: unexpected frame type %d", ErrBadFrame, fr.Type)}
		}
		if fr.Term < f.term {
			// The primary was deposed mid-session (we may have adopted a
			// newer term through another session meanwhile).
			f.col.Inc(stats.CtrReplFenceRejects)
			WriteFrame(conn, Frame{Type: FrameReject, Term: f.term, Seq: f.pipe.Seq()})
			return fmt.Errorf("record from deposed primary (term %d < %d): %w", fr.Term, f.term, ErrStaleTerm)
		}
		switch {
		case fr.Seq <= f.pipe.Seq():
			// Duplicate (retry, or a dup-injecting wire): already durable,
			// so re-ack without re-applying.
			f.col.Inc(stats.CtrReplDupFrames)
			if err := WriteFrame(conn, Frame{Type: FrameAck, Term: f.term, Seq: f.pipe.Seq()}); err != nil {
				return err
			}
		case fr.Seq > f.pipe.Seq()+1:
			// A gap: records were lost on the wire. Refuse — the primary
			// re-ships the backlog from its WAL.
			WriteFrame(conn, Frame{Type: FrameReject, Term: f.term, Seq: f.pipe.Seq()})
			return fmt.Errorf("%w: got seq %d with local seq %d", ErrFollowerBehind, fr.Seq, f.pipe.Seq())
		default:
			batch, err := wal.DecodeBatch(fr.Payload)
			if err != nil {
				return &FrameError{Reason: "record payload", Err: err}
			}
			if err := f.pipe.IngestReplicated(fr.Seq, batch); err != nil {
				return err
			}
			if err := WriteFrame(conn, Frame{Type: FrameAck, Term: f.term, Seq: f.pipe.Seq()}); err != nil {
				return err
			}
		}
	}
}

// Promote turns this follower into the authority for a new term: the
// incremented term is made durable (fencing every older primary that
// later reconnects) and returned for the caller to serve under. The
// follower's log needs no truncation — every record it holds passed
// the frame and WAL CRCs, and an unacknowledged tail is simply extra
// batches the old primary never confirmed to its client; the cluster
// converges on the promoted log by catch-up. Must not run while a
// Serve session is active (it excludes them via the same lock).
func (f *Follower) Promote() (uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	newTerm := f.term + 1
	if err := SaveTerm(f.fs, f.dir, newTerm); err != nil {
		return 0, err
	}
	f.term = newTerm
	f.col.Inc(stats.CtrReplFailovers)
	f.cfg.OnEvent(fmt.Sprintf("promoted to primary at term %d, seq %d", newTerm, f.pipe.Seq()))
	return newTerm, nil
}
