package replica

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"github.com/tdgraph/tdgraph/internal/serve"
	"github.com/tdgraph/tdgraph/internal/stats"
	"github.com/tdgraph/tdgraph/internal/wal"
)

// FollowerConfig parameterises the receiving side.
type FollowerConfig struct {
	// Pipeline is the follower's own durable pipeline configuration —
	// the same shape a solo server uses, so promotion is just "start
	// serving". The WAL sync policy is forced to SyncEachBatch: an
	// acknowledgement must mean fsynced, whatever the config says.
	Pipeline serve.PipelineConfig
	// OnLiveness is called with the session term each time the serving
	// primary proves it is alive — at the handshake, on every heartbeat,
	// and on every record. The automation layer renews its lease here;
	// nil ignores liveness. Called from the session goroutine.
	OnLiveness func(term uint64)
	// OnLeader is called when a handshake durably adopts a new term,
	// with the primary's advertised address (possibly empty). The
	// automation layer uses it to learn who to redirect clients to and
	// to step down if it thought it was the leader itself. Called from
	// the session goroutine, after the term is durable.
	OnLeader func(term uint64, addr string)
	// OnEvent receives one line per notable event (nil discards).
	OnEvent func(string)
}

// Follower applies replicated batches through its own serve.Pipeline —
// WAL append, fsync, live apply path — and acknowledges each only
// after all three, so a primary counting its ack counts a replica that
// could be promoted this instant. Recovery after a follower crash is
// the pipeline's ordinary recovery; nothing replication-specific
// survives a restart except the durable term.
type Follower struct {
	// sessionMu serialises the operations that move the pipeline:
	// replication sessions, snapshot installs, and promotions.
	sessionMu sync.Mutex
	// mu guards the snapshot fields probe answers read while a session
	// is mid-flight: the durable term state and the last-heard leader
	// address. The pipeline position itself is pipe.Seq(), an atomic.
	mu     sync.Mutex
	cfg    FollowerConfig
	pipe   *serve.Pipeline
	col    *stats.Collector
	fs     wal.FS
	dir    string
	state  TermState
	leader string // advertised address of the last adopted primary
	// claimed marks that this process itself promoted to state.Term —
	// it is that term's authority, so a second Hello claiming the same
	// term is a split brain, not a reconnect. Written under sessionMu
	// plus mu; read under either.
	claimed bool
}

// NewFollower recovers the follower's durable state (checkpoint + WAL
// replay + stored term) and returns it ready to Serve.
func NewFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.OnEvent == nil {
		cfg.OnEvent = func(string) {}
	}
	if cfg.OnLiveness == nil {
		cfg.OnLiveness = func(uint64) {}
	}
	if cfg.OnLeader == nil {
		cfg.OnLeader = func(uint64, string) {}
	}
	// Ack honesty: every acknowledged record must be on the platter.
	cfg.Pipeline.WAL.Sync = wal.SyncEachBatch
	pipe, err := serve.NewPipeline(cfg.Pipeline)
	if err != nil {
		return nil, err
	}
	fs := cfg.Pipeline.WAL.FS
	if fs == nil {
		fs = wal.OSFS{}
	}
	state, err := LoadTermState(fs, cfg.Pipeline.WAL.Dir)
	if err != nil {
		pipe.Close()
		return nil, err
	}
	return &Follower{
		cfg:   cfg,
		pipe:  pipe,
		col:   pipe.Collector(),
		fs:    fs,
		dir:   cfg.Pipeline.WAL.Dir,
		state: state,
	}, nil
}

// Pipeline exposes the follower's pipeline (states, stats, Close).
func (f *Follower) Pipeline() *serve.Pipeline { return f.pipe }

// Close waits for any in-flight replication session to unwind and then
// closes the pipeline, so a returned Close is a quiescence guarantee:
// no session is still applying records behind it. Sever the session's
// connection first (Node.Close does) or this blocks until the primary
// hangs up on its own.
func (f *Follower) Close() error {
	f.sessionMu.Lock()
	defer f.sessionMu.Unlock()
	return f.pipe.Close()
}

// Seq returns the follower's last durable-and-applied sequence.
func (f *Follower) Seq() uint64 { return f.pipe.Seq() }

// Term returns the highest term this follower has durably accepted.
func (f *Follower) Term() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.state.Term
}

// Leader returns the advertised address of the last primary whose term
// this follower adopted ("" before any session, or after promotion).
func (f *Follower) Leader() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.leader
}

// setState publishes a new durable term state to concurrent probe
// readers. Callers hold sessionMu.
func (f *Follower) setState(st TermState) {
	f.mu.Lock()
	f.state = st
	f.mu.Unlock()
}

// TailStamp returns the origin term of this follower's newest record
// (0 for un-ledgered history) — the first key of the up-to-dateness
// comparison elections run.
func (f *Follower) TailStamp() uint64 {
	seq := f.pipe.Seq()
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.state.At(seq)
}

// selfClaimed reports whether this process itself promoted to the
// adopted term, making it that term's authority — the one case where
// an equal-term session claim is a split brain and not a reconnect.
func (f *Follower) selfClaimed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.claimed
}

// SetLeaderHint overrides the leader address probe answers hand out.
// A freshly promoted node names itself; a demoted one clears it.
func (f *Follower) SetLeaderHint(addr string) {
	f.mu.Lock()
	f.leader = addr
	f.mu.Unlock()
}

// AnswerProbe writes one FrameState snapshot: durable term, last
// durable sequence, tail origin stamp, and the last-heard leader
// address as the payload — the redirect hint an electing candidate or
// a lost client follows. Probing adopts nothing and is safe while a
// replication session is mid-flight on another connection.
func (f *Follower) AnswerProbe(conn net.Conn) error {
	f.mu.Lock()
	leader := f.leader
	f.mu.Unlock()
	return f.AnswerProbeLeader(conn, leader)
}

// AnswerProbeLeader is AnswerProbe with the leader hint chosen by the
// caller — the automation layer scopes the hint to its lease so
// candidates never chase a leader nobody has heard from.
func (f *Follower) AnswerProbeLeader(conn net.Conn, leader string) error {
	seq := f.pipe.Seq()
	f.mu.Lock()
	fr := Frame{
		Type: FrameState, Term: f.state.Term, Seq: seq,
		Orig: f.state.At(seq), Payload: []byte(leader),
	}
	f.mu.Unlock()
	return WriteFrame(conn, fr)
}

// Serve runs one replication session on conn until the primary
// disconnects (nil), the transport dies (the I/O error), or the
// session must end for protocol reasons (ErrStaleTerm when the primary
// is deposed, ErrFollowerBehind on a sequence gap, ErrFollowerDiverged
// when the primary refuses this replica's log). It blocks the calling
// goroutine; sessions are serialised, and Promote excludes them.
// Probes and client hellos are answered before a session opens without
// blocking on an active one.
func (f *Follower) Serve(conn net.Conn) error {
	for {
		fr, err := ReadFrame(conn)
		if err != nil {
			return err
		}
		switch fr.Type {
		case FrameProbe:
			if err := f.AnswerProbe(conn); err != nil {
				return err
			}
		case FrameClientHello:
			// A client dialed a follower: refuse with the leader hint so
			// its failover can re-aim in one hop.
			f.mu.Lock()
			term, leader := f.state.Term, f.leader
			f.mu.Unlock()
			f.col.Inc(stats.CtrReplRedirects)
			if err := WriteFrame(conn, Frame{Type: FrameReject, Term: term, Payload: []byte(leader)}); err != nil {
				return err
			}
			return &RedirectError{Leader: leader}
		case FrameHello:
			return f.ServeSession(conn, fr)
		default:
			return &FrameError{Reason: "handshake",
				Err: fmt.Errorf("%w: unexpected frame type %d", ErrBadFrame, fr.Type)}
		}
	}
}

// ServeSession runs the replication session that hello opened. A
// session must claim a term no lower than any this follower has
// adopted. A claim *below* the adopted term is a deposed primary;
// a claim *equal* to a term this follower itself promoted to is a
// split brain (the follower is that term's authority) — both are
// fenced. An equal claim of a term adopted *from* a primary is that
// unique primary reconnecting — a dropped connection, a leader
// re-attaching after a transient failure — and is accepted without
// re-persisting anything: terms are unique by construction (a primary
// claims max-of-probed+1 over a quorum), so per term there is exactly
// one process that can present it.
func (f *Follower) ServeSession(conn net.Conn, hello Frame) error {
	f.sessionMu.Lock()
	defer f.sessionMu.Unlock()

	if hello.Term < f.state.Term || (hello.Term == f.state.Term && f.claimed) {
		f.col.Inc(stats.CtrReplFenceRejects)
		f.cfg.OnEvent(fmt.Sprintf("rejected primary with stale term %d (ours %d)", hello.Term, f.state.Term))
		WriteFrame(conn, Frame{Type: FrameReject, Term: f.state.Term, Seq: f.pipe.Seq()})
		return fmt.Errorf("session with deposed primary (term %d <= %d): %w", hello.Term, f.state.Term, ErrStaleTerm)
	}
	if hello.Term > f.state.Term {
		// Durably adopt the new term before welcoming: after a crash this
		// follower must still refuse the old primary.
		adopted := f.state
		adopted.Term = hello.Term
		adopted.Ledger = append([]TermBase(nil), f.state.Ledger...)
		if err := SaveTermState(f.fs, f.dir, adopted); err != nil {
			return err
		}
		f.setState(adopted)
	}
	f.mu.Lock()
	f.leader = string(hello.Payload)
	f.claimed = false
	f.mu.Unlock()
	f.cfg.OnLeader(hello.Term, string(hello.Payload))
	f.cfg.OnLiveness(hello.Term)
	if err := WriteFrame(conn, Frame{
		Type: FrameWelcome, Term: f.state.Term, Seq: f.pipe.Seq(),
		Orig: f.state.At(f.pipe.Seq()),
	}); err != nil {
		return err
	}

	for {
		fr, err := ReadFrame(conn)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil // primary closed the session cleanly
			}
			return err
		}
		if fr.Type == FrameReject {
			// The primary refused this replica's log at the handshake: it
			// diverges (a resurrected unacknowledged tail, typically) and
			// must be reseeded, not caught up. A primary with a snapshot
			// source sends FrameSnapOffer instead of this refusal.
			f.cfg.OnEvent(fmt.Sprintf("primary refused our log at its seq %d: reseed required", fr.Seq))
			return fmt.Errorf("%w: refused by primary at term %d (its log ends at %d, ours at %d)",
				ErrFollowerDiverged, fr.Term, fr.Seq, f.pipe.Seq())
		}
		if fr.Type == FrameSnapOffer {
			// The primary decided this replica cannot be served from its
			// log — diverged, or behind retention — and ships state
			// instead of refusing. Accepting it *is* the automatic
			// reseed: install atomically, reset the ledger to the shipped
			// history, and keep the session going; the primary resumes
			// ordinary records from the installed sequence.
			if err := f.receiveSnapshot(conn, fr); err != nil {
				return err
			}
			continue
		}
		if fr.Type == FrameHeartbeat {
			// Liveness only: renew the lease, acknowledge nothing. A
			// heartbeat from a deposed primary fences it like a record
			// would.
			if fr.Term < f.state.Term {
				f.col.Inc(stats.CtrReplFenceRejects)
				WriteFrame(conn, Frame{Type: FrameReject, Term: f.state.Term, Seq: f.pipe.Seq()})
				return fmt.Errorf("heartbeat from deposed primary (term %d < %d): %w", fr.Term, f.state.Term, ErrStaleTerm)
			}
			f.cfg.OnLiveness(fr.Term)
			continue
		}
		if fr.Type != FrameRecord {
			return &FrameError{Reason: "session",
				Err: fmt.Errorf("%w: unexpected frame type %d", ErrBadFrame, fr.Type)}
		}
		if fr.Term < f.state.Term {
			// The primary was deposed mid-session (we may have adopted a
			// newer term through another session meanwhile).
			f.col.Inc(stats.CtrReplFenceRejects)
			WriteFrame(conn, Frame{Type: FrameReject, Term: f.state.Term, Seq: f.pipe.Seq()})
			return fmt.Errorf("record from deposed primary (term %d < %d): %w", fr.Term, f.state.Term, ErrStaleTerm)
		}
		f.cfg.OnLiveness(fr.Term)
		switch {
		case fr.Seq <= f.pipe.Seq():
			// Duplicate (retry, or a dup-injecting wire): already durable,
			// so re-ack without re-applying.
			f.col.Inc(stats.CtrReplDupFrames)
			if err := WriteFrame(conn, Frame{Type: FrameAck, Term: f.state.Term, Seq: f.pipe.Seq()}); err != nil {
				return err
			}
		case fr.Seq > f.pipe.Seq()+1:
			// A gap: records were lost on the wire. Refuse — the primary
			// re-ships the backlog from its WAL.
			WriteFrame(conn, Frame{Type: FrameReject, Term: f.state.Term, Seq: f.pipe.Seq()})
			return fmt.Errorf("%w: got seq %d with local seq %d", ErrFollowerBehind, fr.Seq, f.pipe.Seq())
		default:
			if err := f.stampOrigin(fr); err != nil {
				WriteFrame(conn, Frame{Type: FrameReject, Term: f.state.Term, Seq: f.pipe.Seq()})
				return err
			}
			batch, err := wal.DecodeBatch(fr.Payload)
			if err != nil {
				return &FrameError{Reason: "record payload", Err: err}
			}
			if err := f.pipe.IngestReplicated(fr.Seq, batch); err != nil {
				return err
			}
			if err := WriteFrame(conn, Frame{Type: FrameAck, Term: f.state.Term, Seq: f.pipe.Seq()}); err != nil {
				return err
			}
		}
	}
}

// stampOrigin maintains the follower's term ledger as records arrive:
// the first record of each origin term opens a ledger range, persisted
// durably *before* the record itself — a crash in between leaves an
// entry whose base does not exist yet, which the next session's
// handshake simply never consults. An origin below our newest range is
// a contradiction (this primary's log attributes sequences we already
// hold to an older term than we stamped them with) and refuses the
// session rather than silently diverging. Origin 0 — un-ledgered
// history from a pre-replication log — is applied unstamped.
func (f *Follower) stampOrigin(fr Frame) error {
	tail := f.state.tail()
	switch {
	case fr.Orig == 0 || fr.Orig == tail:
		return nil
	case fr.Orig < tail:
		return fmt.Errorf("%w: record %d originates at term %d, our ledger is already at term %d",
			ErrFollowerDiverged, fr.Seq, fr.Orig, tail)
	}
	stamped := f.state
	stamped.Ledger = append([]TermBase(nil), f.state.Ledger...)
	stamped.Stamp(fr.Orig, fr.Seq)
	if err := SaveTermState(f.fs, f.dir, stamped); err != nil {
		return err
	}
	f.setState(stamped)
	return nil
}

// Promote turns this follower into the authority for the next term; it
// is PromoteTo at the follower's own adopted term plus one — right
// when the caller knows no higher term was ever claimed (the
// operator-run failover), while elections claim max-of-probed+1.
func (f *Follower) Promote() (uint64, error) {
	f.sessionMu.Lock()
	defer f.sessionMu.Unlock()
	return f.promoteLocked(f.state.Term + 1)
}

// PromoteTo makes this follower the authority for exactly term: the
// term is made durable (fencing every older primary that later
// reconnects), the ledger is stamped so records the new primary
// creates are attributed to it, and the term is returned for the
// caller to serve under. A term at or below the adopted one is refused
// with ErrStaleTerm — someone else claimed it first. The promoted log
// itself needs no truncation — every record it holds passed the frame
// and WAL CRCs, and an unacknowledged tail is simply extra batches the
// old primary never confirmed to its client — but the promotion is
// only safe for the *most-up-to-date* candidate, and the ledger is
// what enforces the rest: any replica whose log grew past or apart
// from the promoted one (a deposed primary resurrected by WAL replay,
// say) presents a conflicting tail stamp at its next handshake and is
// refused with ErrFollowerDiverged instead of converging by catch-up.
// Must not run while a Serve session is active (it excludes them via
// the same lock).
func (f *Follower) PromoteTo(term uint64) (uint64, error) {
	f.sessionMu.Lock()
	defer f.sessionMu.Unlock()
	return f.promoteLocked(term)
}

func (f *Follower) promoteLocked(term uint64) (uint64, error) {
	if term <= f.state.Term {
		return 0, fmt.Errorf("cannot promote to term %d at adopted term %d: %w", term, f.state.Term, ErrStaleTerm)
	}
	promoted := f.state
	promoted.Ledger = append([]TermBase(nil), f.state.Ledger...)
	promoted.Term = term
	promoted.Stamp(promoted.Term, f.pipe.Seq()+1)
	if err := SaveTermState(f.fs, f.dir, promoted); err != nil {
		return 0, err
	}
	f.setState(promoted)
	f.mu.Lock()
	f.leader = ""
	f.claimed = true
	f.mu.Unlock()
	f.col.Inc(stats.CtrReplFailovers)
	f.cfg.OnEvent(fmt.Sprintf("promoted to primary at term %d, seq %d", promoted.Term, f.pipe.Seq()))
	return promoted.Term, nil
}
