package replica

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"testing"

	"github.com/tdgraph/tdgraph/internal/fault"
	"github.com/tdgraph/tdgraph/internal/serve"
	"github.com/tdgraph/tdgraph/internal/stats"
	"github.com/tdgraph/tdgraph/internal/wal"
)

// trialDigest captures everything a failover trial decided, so running
// the same seed twice must reproduce it bit for bit.
type trialDigest struct {
	acked     int
	winner    int
	crashed   bool
	stateHash uint64
}

func hashStates(states []float64) uint64 {
	h := uint64(1469598103934665603)
	for _, s := range states {
		h ^= math.Float64bits(s)
		h *= 1099511628211
	}
	return h
}

// followerNode is one follower plus its live replication session.
type followerNode struct {
	f    *Follower
	done chan error
}

func attach(t *testing.T, prim *Primary, f *Follower, wrap func(net.Conn) net.Conn) *followerNode {
	t.Helper()
	pside, fside := net.Pipe()
	node := &followerNode{f: f, done: make(chan error, 1)}
	go func() { node.done <- f.Serve(fside) }()
	conn := net.Conn(pside)
	if wrap != nil {
		conn = wrap(conn)
	}
	if err := prim.AddFollower(conn); err != nil {
		t.Fatalf("AddFollower: %v", err)
	}
	return node
}

// runFailoverTrial kills the primary at a seeded point — mid-WAL-write,
// mid-fsync, or right after a record is torn mid-frame on a follower's
// wire — promotes the most-advanced follower, re-feeds the unacked
// tail through it, and checks the invariants:
//
//   - zero acknowledged-batch loss: the promoted follower's sequence
//     covers every batch Ingest acknowledged;
//   - convergence: after re-feeding, the promoted primary and the
//     re-attached follower both hold states Float64bits-identical to an
//     uninterrupted run.
func runFailoverTrial(t *testing.T, trial int) trialDigest {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(2000 + trial)))
	w := testWorkload(t, 10)
	want := referenceStates(t, w)

	// Primary: WAL on a crash-simulating filesystem; checkpoints on so
	// the sync-fuse mode can also die inside a checkpoint barrier.
	crashFS := fault.NewCrashFS()
	pdir := t.TempDir()
	pcfg := nodeConfig(w, pdir)
	pcfg.WAL.FS = crashFS
	pcfg.WAL.SegmentBytes = 1024
	pcfg.Collector = stats.NewCollector()

	// Followers: plain disks, full WAL retention so either can feed the
	// other's catch-up after the failover.
	mkFollower := func(dir string) *Follower {
		cfg := nodeConfig(w, dir)
		cfg.CheckpointEvery = -1
		fl, err := NewFollower(FollowerConfig{Pipeline: cfg})
		if err != nil {
			t.Fatalf("NewFollower: %v", err)
		}
		return fl
	}
	f1 := mkFollower(t.TempDir())
	f2 := mkFollower(t.TempDir())

	if _, err := ClaimTerm(wal.Options{Dir: pdir}, 1); err != nil {
		t.Fatal(err)
	}
	prim := NewPrimary(PrimaryConfig{Term: 1, ClusterSize: 3, WAL: pcfg.WAL, Collector: pcfg.Collector})

	// Fault plan, all positions drawn from the trial seed.
	mode := trial % 3
	var wrapF2 func(net.Conn) net.Conn
	switch mode {
	case 0:
		// Die mid-write: a WAL record tears on the platter.
		crashFS.ArmCrash(rng.Int63n(2000))
	case 1:
		// Die mid-fsync: the barrier call never returns.
		crashFS.ArmCrashAtSync(rng.Intn(8))
	case 2:
		// First a record is torn mid-frame on follower 2's wire (the
		// connection dies under the primary, quorum holds 2-of-3), then
		// the primary dies mid-write.
		inj := fault.New(int64(3000 + trial))
		inj.Arm(fault.NetTrunc, float64(40+rng.Int63n(1500)))
		wrapF2 = inj.Conn
		crashFS.ArmCrash(500 + rng.Int63n(1500))
	}

	n1 := attach(t, prim, f1, nil)
	n2 := attach(t, prim, f2, wrapF2)

	pcfg.Replicator = prim
	pipe, err := serve.NewPipeline(pcfg)
	if err != nil {
		t.Fatal(err)
	}

	acked := 0
	crashed := false
	func() {
		defer func() {
			switch r := recover().(type) {
			case nil:
			case fault.CrashSignal:
				crashed = true
			default:
				panic(r)
			}
		}()
		for _, b := range w.Batches {
			if err := pipe.Ingest(b); err != nil {
				t.Errorf("trial %d: ingest failed without crashing: %v", trial, err)
				return
			}
			acked++
		}
	}()
	if t.Failed() {
		t.FailNow()
	}
	if crashed {
		// The page cache dies with the process.
		if err := crashFS.LoseUnsynced(rng); err != nil {
			t.Fatal(err)
		}
	}
	// The primary is gone; its sessions collapse.
	prim.Close()
	<-n1.done
	<-n2.done

	// Failover: promote the most-advanced follower.
	winner, other, winnerIdx := f1, f2, 0
	if f2.Seq() > f1.Seq() {
		winner, other, winnerIdx = f2, f1, 1
	}
	if int(winner.Seq()) < acked {
		t.Fatalf("trial %d (mode %d): acknowledged-batch loss: %d batches acked, best follower holds %d",
			trial, mode, acked, winner.Seq())
	}
	newTerm, err := winner.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if newTerm != 2 {
		t.Fatalf("promotion produced term %d, want 2", newTerm)
	}

	// The promoted follower serves: attach the survivor (it catches up
	// from the new primary's WAL) and re-feed everything past the new
	// primary's log — acked batches are already in it, so nothing is
	// applied twice and nothing acked is lost.
	newPrim := NewPrimary(PrimaryConfig{
		Term: newTerm, ClusterSize: 3,
		WAL:       winner.Pipeline().WALOptions(),
		Collector: winner.Pipeline().Collector(),
	})
	no := attach(t, newPrim, other, nil)
	winner.Pipeline().SetReplicator(newPrim)
	for _, b := range w.Batches[winner.Seq():] {
		if err := winner.Pipeline().Ingest(b); err != nil {
			t.Fatalf("trial %d: re-feed ingest: %v", trial, err)
		}
	}
	newPrim.Close()
	<-no.done

	if got := winner.Seq(); got != uint64(len(w.Batches)) {
		t.Fatalf("promoted primary finished at seq %d, want %d", got, len(w.Batches))
	}
	if other.Seq() != winner.Seq() {
		t.Fatalf("surviving follower at seq %d, promoted at %d", other.Seq(), winner.Seq())
	}
	if !statesEqual(winner.Pipeline().Session().States(), want) {
		t.Fatalf("trial %d (mode %d): promoted primary states diverged from uninterrupted run", trial, mode)
	}
	if !statesEqual(other.Pipeline().Session().States(), want) {
		t.Fatalf("trial %d (mode %d): surviving follower states diverged from uninterrupted run", trial, mode)
	}

	dig := trialDigest{
		acked:     acked,
		winner:    winnerIdx,
		crashed:   crashed,
		stateHash: hashStates(winner.Pipeline().Session().States()),
	}
	winner.Pipeline().Close()
	other.Pipeline().Close()
	return dig
}

// TestChaosKillPrimaryFailover: twelve seeded kill-the-primary trials
// across three death modes (mid-WAL-write, mid-fsync, record torn on
// the wire then crash). Every trial must end with a promoted follower
// holding all acknowledged batches and byte-identical states, and each
// trial's outcome must reproduce exactly when its seed is replayed.
func TestChaosKillPrimaryFailover(t *testing.T) {
	for trial := 0; trial < 12; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			first := runFailoverTrial(t, trial)
			if !first.crashed && trial%3 != 1 {
				t.Errorf("trial %d: crash never fired (fuse past the workload?)", trial)
			}
			second := runFailoverTrial(t, trial)
			if first != second {
				t.Fatalf("trial %d not deterministic: %+v vs %+v", trial, first, second)
			}
		})
	}
}

// TestFencedOldPrimaryRejected: after a failover, a deposed primary
// that reconnects is refused with ErrStaleTerm (wrapping
// serve.ErrFenced) at the handshake, and a stale-term record arriving
// mid-session is refused without being applied — the old primary can
// neither double-apply nor acknowledge anything.
func TestFencedOldPrimaryRejected(t *testing.T) {
	w := testWorkload(t, 6)

	fcfg := nodeConfig(w, t.TempDir())
	fcfg.CheckpointEvery = -1
	fl, err := NewFollower(FollowerConfig{Pipeline: fcfg})
	if err != nil {
		t.Fatal(err)
	}

	// Session 1: the original primary (term 1) replicates three batches.
	pdir := t.TempDir()
	pcfg := nodeConfig(w, pdir)
	if _, err := ClaimTerm(wal.Options{Dir: pdir}, 1); err != nil {
		t.Fatal(err)
	}
	oldPrim := NewPrimary(PrimaryConfig{Term: 1, ClusterSize: 2, WAL: pcfg.WAL})
	n1 := &followerNode{f: fl, done: make(chan error, 1)}
	pside, fside := net.Pipe()
	go func() { n1.done <- fl.Serve(fside) }()
	if err := oldPrim.AddFollower(pside); err != nil {
		t.Fatal(err)
	}
	pcfg.Replicator = oldPrim
	pipe, err := serve.NewPipeline(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range w.Batches[:3] {
		if err := pipe.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	oldPrim.Close()
	<-n1.done

	// Failover: the follower is promoted to term 2.
	if _, err := fl.Promote(); err != nil {
		t.Fatal(err)
	}
	seqBefore := fl.Seq()
	statesBefore := append([]float64(nil), fl.Pipeline().Session().States()...)
	fencesBefore := fl.Pipeline().Collector().Get(stats.CtrReplFenceRejects)

	// The deposed primary reconnects: rejected at the handshake with the
	// typed fencing error.
	pside2, fside2 := net.Pipe()
	sess := make(chan error, 1)
	go func() { sess <- fl.Serve(fside2) }()
	err = oldPrim2(t, pdir, pcfg).AddFollower(pside2)
	if !errors.Is(err, ErrStaleTerm) || !errors.Is(err, serve.ErrFenced) {
		t.Fatalf("reconnect: want ErrStaleTerm wrapping serve.ErrFenced, got %v", err)
	}
	if serr := <-sess; !errors.Is(serr, ErrStaleTerm) {
		t.Fatalf("follower session: want ErrStaleTerm, got %v", serr)
	}

	// Equal-term split brain: a second process that claims the *same*
	// term the promoted follower already holds (a deposed primary whose
	// own stored term plus one collides with the promotion) is rejected
	// too — sessions must claim strictly more than the follower has
	// adopted, so no two primaries can ever be acked under one term.
	psideEq, fsideEq := net.Pipe()
	sessEq := make(chan error, 1)
	go func() { sessEq <- fl.Serve(fsideEq) }()
	eqPrim := NewPrimary(PrimaryConfig{Term: fl.Term(), ClusterSize: 2, WAL: pcfg.WAL})
	err = eqPrim.AddFollower(psideEq)
	if !errors.Is(err, ErrStaleTerm) || !errors.Is(err, serve.ErrFenced) {
		t.Fatalf("equal-term primary: want ErrStaleTerm wrapping serve.ErrFenced, got %v", err)
	}
	if serr := <-sessEq; !errors.Is(serr, ErrStaleTerm) {
		t.Fatalf("equal-term session: want ErrStaleTerm, got %v", serr)
	}

	// A split-brain primary that already held a session cannot slip a
	// stale-term record through mid-stream either.
	pside3, fside3 := net.Pipe()
	sess3 := make(chan error, 1)
	go func() { sess3 <- fl.Serve(fside3) }()
	if err := WriteFrame(pside3, Frame{Type: FrameHello, Term: 3}); err != nil {
		t.Fatal(err)
	}
	if f, err := ReadFrame(pside3); err != nil || f.Type != FrameWelcome {
		t.Fatalf("welcome: %+v, %v", f, err)
	}
	payload := wal.EncodeBatch(w.Batches[3])
	if err := WriteFrame(pside3, Frame{Type: FrameRecord, Term: 1, Seq: seqBefore + 1, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	rej, err := ReadFrame(pside3)
	if err != nil || rej.Type != FrameReject || rej.Term != 3 {
		t.Fatalf("stale record answer: %+v, %v (want Reject at term 3)", rej, err)
	}
	if serr := <-sess3; !errors.Is(serr, ErrStaleTerm) {
		t.Fatalf("stale-record session: want ErrStaleTerm, got %v", serr)
	}

	// Nothing the deposed primary sent was applied or acknowledged.
	if fl.Seq() != seqBefore {
		t.Fatalf("follower advanced to seq %d under a fenced primary", fl.Seq())
	}
	if !statesEqual(fl.Pipeline().Session().States(), statesBefore) {
		t.Fatal("follower states changed under a fenced primary")
	}
	if got := fl.Pipeline().Collector().Get(stats.CtrReplFenceRejects); got != fencesBefore+3 {
		t.Fatalf("fence rejections = %d, want %d", got, fencesBefore+3)
	}
	pipe.Close()
	fl.Pipeline().Close()
}

// oldPrim2 rebuilds the deposed primary the way a restarted process
// would: from its own durable term, which is still the old one.
func oldPrim2(t *testing.T, pdir string, pcfg serve.PipelineConfig) *Primary {
	t.Helper()
	st, err := LoadTermState(wal.OSFS{}, pdir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Term != 1 {
		t.Fatalf("deposed primary restarted with term %d, want its stored 1", st.Term)
	}
	return NewPrimary(PrimaryConfig{Term: st.Term, ClusterSize: 2, WAL: pcfg.WAL})
}
