package replica

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"github.com/tdgraph/tdgraph/internal/graph"
	"github.com/tdgraph/tdgraph/internal/serve"
	"github.com/tdgraph/tdgraph/internal/stats"
	"github.com/tdgraph/tdgraph/internal/wal"
)

// This file is the automation layer that turns a replica set into a
// self-driving cluster. PR 4 built the mechanism (terms, fencing,
// probes, promotion) and PR 7 the repair path (snapshot reseed); both
// still assumed an operator deciding *when* to fail over. Node closes
// the loop: the leader heartbeats its followers, followers hold a
// lease on the injectable clock, a missed lease starts a randomized
// election that races the existing probe machinery, the most
// up-to-date candidate claims max-of-probed+1 and promotes, losers
// and deposed primaries observe the higher term and rejoin as
// followers (reseeding through the PR 7 path when diverged), and
// clients chase the leader through redirect hints. Everything is
// built from the PR 4/7 primitives, so the safety argument is
// unchanged — elections only decide who runs them.

// ErrLeaseExpired reports a follower's liveness lease running out: no
// heartbeat, record, or handshake arrived from the primary within the
// lease window, so the primary is suspect and an election is due.
var ErrLeaseExpired = errors.New("replica: leader lease expired")

// ErrElectionLost reports a candidacy withdrawn in favor of a better
// peer: one with a more current log, or one still under a live
// leader's lease. The loser returns to following and waits to be
// attached by whoever wins.
var ErrElectionLost = errors.New("replica: election lost")

// Role is a node's position in the cluster at a moment in time.
type Role string

const (
	// RoleFollower applies replicated records and watches the lease.
	RoleFollower Role = "follower"
	// RoleCandidate has an expired lease and is racing an election.
	RoleCandidate Role = "candidate"
	// RoleLeader serves client ingestion and heartbeats followers.
	RoleLeader Role = "leader"
)

// NodeConfig parameterises one self-driving cluster member.
type NodeConfig struct {
	// Addr is this node's advertised address: the dial key peers and
	// clients reach it by, the redirect hint it hands out as leader,
	// and the deterministic tie-break in elections.
	Addr string
	// Peers are the other members' advertised addresses.
	Peers []string
	// Dial opens a connection to a peer address.
	Dial func(addr string) (net.Conn, error)
	// Pipeline is this node's durable pipeline configuration, exactly
	// what a solo server or an operator-run follower would use.
	Pipeline serve.PipelineConfig
	// Snapshots, when set, lets this node reseed diverged or
	// far-behind peers while leading (the PR 7 path). When nil and the
	// pipeline checkpoints, the node serves reseeds from its own
	// checkpoint generations.
	Snapshots SnapshotSource
	// Quorum overrides the majority rule when > 0, counting this node
	// as one (default: majority of len(Peers)+1).
	Quorum int
	// HeartbeatEvery is the leader's liveness cadence (default 1s).
	HeartbeatEvery time.Duration
	// LeaseTimeout is how long a follower tolerates silence before
	// suspecting the leader (default 4x HeartbeatEvery). It also
	// bounds how long an isolated leader keeps serving: a leader that
	// cannot reach a quorum of followers for a full lease steps down.
	LeaseTimeout time.Duration
	// AckTimeout bounds one replication or probe round trip
	// (default 5s).
	AckTimeout time.Duration
	// Seed drives the randomized election splay (mixed with Addr so
	// identically seeded members still splay apart).
	Seed int64
	// SLO is the ingest-latency objective while leading: when set, an
	// admission controller watches each client batch's end-to-end
	// ingest latency (WAL, fsync, quorum) and starts refusing new
	// submissions with backpressure rejects — typed, retryable, with a
	// retry-after hint — once latency runs sustainedly past it. 0
	// disables SLO-driven admission control.
	SLO time.Duration
	// DiskRetryAfter is the retry-after hint handed to clients refused
	// under disk pressure (default 250ms): long enough that retention
	// advancing or an operator freeing space can make progress, short
	// enough that recovery is noticed promptly.
	DiskRetryAfter time.Duration
	// Clock supplies every wall time and wait (default real time).
	// The tdgraph-vet clock-discipline check pins this package to it.
	Clock serve.Clock
	// OnEvent receives one line per notable event (nil discards).
	OnEvent func(string)
}

func (c NodeConfig) withDefaults() NodeConfig {
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = time.Second
	}
	if c.LeaseTimeout <= 0 {
		c.LeaseTimeout = 4 * c.HeartbeatEvery
	}
	if c.AckTimeout <= 0 {
		c.AckTimeout = 5 * time.Second
	}
	if c.Quorum <= 0 {
		c.Quorum = (len(c.Peers)+1)/2 + 1
	}
	if c.DiskRetryAfter <= 0 {
		c.DiskRetryAfter = 250 * time.Millisecond
	}
	if c.Clock == nil {
		c.Clock = serve.RealClock{}
	}
	if c.OnEvent == nil {
		c.OnEvent = func(string) {}
	}
	return c
}

// Node is one self-driving cluster member: a Follower wired to a
// lease monitor, an election loop, and (while leading) a Primary plus
// the client-ingestion handler. Run drives the role state machine;
// HandleConn serves one accepted connection. Both are safe to use
// concurrently with each other.
type Node struct {
	cfg   NodeConfig
	fol   *Follower
	col   *stats.Collector
	clock serve.Clock
	slo   *serve.SLOController // nil unless cfg.SLO is set

	// pmu serialises everything that moves the pipeline outside a
	// replication session: client ingest, heartbeats, follower
	// attachment, and installing/closing the Primary. Never acquire
	// fol.sessionMu while holding pmu (the election path takes them in
	// the opposite order).
	pmu     sync.Mutex
	primary *Primary
	// ackedSeq is the quorum-acknowledged prefix of the log: the
	// highest sequence a client may be told is durable. Ingest advances
	// the pipeline's sequence at the local WAL append, *before* quorum
	// replication, so the two differ exactly when the log holds a tail
	// no quorum ever confirmed — a tail that must never be advertised
	// in a Welcome or re-ack. Guarded by pmu.
	ackedSeq uint64

	// mu guards the cheap control state below.
	mu         sync.Mutex
	role       Role
	term       uint64
	leaderAddr string
	leaseUntil time.Time
	rng        *rand.Rand
	session    net.Conn // active inbound replication session
	closed     bool
	// isolatedSince is when the leader started missing its quorum of
	// heartbeat deliveries (zero while delivery is healthy).
	isolatedSince time.Time
}

// NewNode recovers the local durable state and returns a node in the
// follower role with a fresh lease — a boot grace in which an existing
// leader can attach it before it suspects anything.
func NewNode(cfg NodeConfig) (*Node, error) {
	cfg = cfg.withDefaults()
	if cfg.Dial == nil {
		return nil, errors.New("replica: node needs a dialer")
	}
	n := &Node{cfg: cfg, clock: cfg.Clock}
	n.slo = serve.NewSLOController(serve.SLOConfig{Target: cfg.SLO})
	h := fnv.New64a()
	h.Write([]byte(cfg.Addr))
	n.rng = rand.New(rand.NewSource(cfg.Seed ^ int64(h.Sum64())))
	fol, err := NewFollower(FollowerConfig{
		Pipeline:   cfg.Pipeline,
		OnLiveness: n.noteLiveness,
		OnLeader:   n.noteLeader,
		OnEvent:    cfg.OnEvent,
	})
	if err != nil {
		return nil, err
	}
	n.fol = fol
	n.col = fol.Pipeline().Collector()
	if n.cfg.Snapshots == nil {
		if src := fol.Pipeline().SnapshotSource(); src != nil {
			n.cfg.Snapshots = src
		}
	}
	n.role = RoleFollower
	n.term = fol.Term()
	n.leaseUntil = n.clock.Now().Add(cfg.LeaseTimeout)
	return n, nil
}

// Follower exposes the node's replication state (pipeline, seq, term).
func (n *Node) Follower() *Follower { return n.fol }

// Role returns the node's current role.
func (n *Node) Role() Role {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role
}

// Term returns the highest term this node has adopted or claimed.
func (n *Node) Term() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.term
}

// LeaderAddr returns the node's best guess at the current leader's
// address: its own when leading, the last adopted primary's otherwise
// ("" when it has none).
func (n *Node) LeaderAddr() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role == RoleLeader {
		return n.cfg.Addr
	}
	return n.leaderAddr
}

// noteLiveness renews the lease: the primary at term proved it is
// alive. Stale terms renew nothing. Called from session goroutines.
func (n *Node) noteLiveness(term uint64) {
	n.mu.Lock()
	if term >= n.term && n.role != RoleLeader {
		n.term = term
		n.leaseUntil = n.clock.Now().Add(n.cfg.LeaseTimeout)
		if n.role == RoleCandidate {
			n.role = RoleFollower // a live leader ends the candidacy
		}
	}
	n.mu.Unlock()
}

// noteLeader records a durably adopted term and its primary's
// address. A leader seeing a *newer* term adopted through its own
// follower half has been deposed and auto-demotes. Called from
// session goroutines, after the term is durable.
func (n *Node) noteLeader(term uint64, addr string) {
	n.mu.Lock()
	wasLeader := n.role == RoleLeader && term > n.term
	if term >= n.term {
		n.term = term
		n.leaderAddr = addr
		n.leaseUntil = n.clock.Now().Add(n.cfg.LeaseTimeout)
		if n.role == RoleCandidate {
			n.role = RoleFollower
		}
	}
	n.mu.Unlock()
	if wasLeader {
		n.demote(fmt.Sprintf("deposed by term %d at %s", term, addr))
	}
}

// Run drives the role state machine until ctx is cancelled or the
// node is closed: watch the lease while following, splay-then-elect
// while a candidate, heartbeat and re-attach peers while leading.
// Every wait goes through the injectable clock.
func (n *Node) Run(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		closed, role, lease, term := n.runView()
		if closed {
			return nil
		}
		switch role {
		case RoleLeader:
			if err := n.leaderTick(); err != nil {
				continue // demoted; re-read the role immediately
			}
			if err := n.clock.Sleep(ctx, n.cfg.HeartbeatEvery); err != nil {
				return err
			}
		case RoleFollower:
			now := n.clock.Now()
			if now.Before(lease) {
				if err := n.clock.Sleep(ctx, lease.Sub(now)); err != nil {
					return err
				}
				continue // the lease may have been renewed while we slept
			}
			n.col.Inc(stats.CtrReplHeartbeatsMissed)
			n.cfg.OnEvent(fmt.Sprintf("term %d: %v; standing for election", term, ErrLeaseExpired))
			n.severSession() // release a dead session's hold on the pipeline
			n.standForElection()
		case RoleCandidate:
			// Randomized splay so identically timed candidates probe at
			// different instants; whoever probes later sees the earlier
			// winner's claim (or lease) and defers.
			if err := n.clock.Sleep(ctx, n.electionSplay()); err != nil {
				return err
			}
			if role, _ := n.roleView(); role != RoleCandidate {
				continue // a leader attached us while we waited
			}
			if err := n.electOnce(); err != nil {
				n.cfg.OnEvent(fmt.Sprintf("election: %v", err))
				if errors.Is(err, ErrElectionLost) {
					// Defer: the better peer wins and attaches us; give it
					// a lease-worth before suspecting again.
					n.deferCandidacy()
				}
				// Quorum unreachable: stay candidate and splay again.
			}
		}
	}
}

// runView reads the role loop's decision state under the state lock.
func (n *Node) runView() (closed bool, role Role, lease time.Time, term uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.closed, n.role, n.leaseUntil, n.term
}

// standForElection flips an expired follower to candidate, unless a
// session renewed the lease while the caller was severing the old one.
func (n *Node) standForElection() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role == RoleFollower && !n.clock.Now().Before(n.leaseUntil) {
		n.role = RoleCandidate
		// The lease died with the leader: stop vouching for it in probe
		// answers, or two deferring candidates would keep re-certifying
		// a dead leader to each other.
		n.leaderAddr = ""
	}
}

// deferCandidacy returns a losing candidate to following with a fresh
// lease, giving the better peer time to win and attach it.
func (n *Node) deferCandidacy() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role == RoleCandidate {
		n.role = RoleFollower
		n.leaseUntil = n.clock.Now().Add(n.cfg.LeaseTimeout)
	}
}

// electionSplay draws the seeded randomized wait before a candidacy:
// between half a heartbeat and half a lease, so candidates spread
// across the window that detection already cost.
func (n *Node) electionSplay() time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	lo := n.cfg.HeartbeatEvery / 2
	span := n.cfg.LeaseTimeout/2 - lo
	if span <= 0 {
		return lo
	}
	return lo + time.Duration(n.rng.Int63n(int64(span)))
}

// electOnce runs one election round: probe every peer, and claim
// max-of-probed+1 only if a quorum was reachable, no reached peer is
// still under a live leader's lease, and no reached peer's log
// outranks ours (origin term, then sequence, then lowest address).
// Deterministic given the probe answers: for any reachable set there
// is exactly one node every other member defers to.
func (n *Node) electOnce() error {
	n.col.Inc(stats.CtrReplElections)
	myTerm := n.fol.Term()
	mySeq := n.fol.Seq()
	myOrig := n.fol.TailStamp()
	reached := 1 // this node
	maxTerm := myTerm
	for _, peer := range n.cfg.Peers {
		conn, err := n.cfg.Dial(peer)
		if err != nil {
			continue
		}
		st, err := Probe(conn, n.cfg.AckTimeout, n.clock)
		conn.Close()
		if err != nil {
			continue
		}
		reached++
		if st.Term > maxTerm {
			maxTerm = st.Term
		}
		if st.Leader != "" && st.Leader != n.cfg.Addr && st.Term >= myTerm {
			// Leader stickiness: that peer still hears a leader we cannot
			// (an asymmetric partition around us). Deferring instead of
			// claiming keeps a reachable-but-deaf node from deposing a
			// healthy leader — and we adopt the hint, so clients asking us
			// are redirected somewhere useful.
			n.mu.Lock()
			n.leaderAddr = st.Leader
			n.mu.Unlock()
			return fmt.Errorf("%w: %s still follows %s under a live lease", ErrElectionLost, peer, st.Leader)
		}
		if outranks(st, peer, myOrig, mySeq, n.cfg.Addr) {
			return fmt.Errorf("%w: %s is more current (orig %d seq %d vs ours orig %d seq %d)",
				ErrElectionLost, peer, st.Orig, st.Seq, myOrig, mySeq)
		}
	}
	if reached < n.cfg.Quorum {
		return fmt.Errorf("%w: reached %d of %d members", ErrQuorumLost, reached, n.cfg.Quorum)
	}
	term, err := n.fol.PromoteTo(maxTerm + 1)
	if err != nil {
		return err
	}
	n.becomeLeader(term)
	return nil
}

// outranks reports whether a probed peer's candidacy beats ours:
// newer tail origin term, then longer log, then — on a full tie —
// the lexicographically lower address, so equals still agree on one
// winner.
func outranks(st PeerState, peerAddr string, myOrig, mySeq uint64, myAddr string) bool {
	if st.Orig != myOrig {
		return st.Orig > myOrig
	}
	if st.Seq != mySeq {
		return st.Seq > mySeq
	}
	return peerAddr < myAddr
}

// becomeLeader installs the Primary for a freshly claimed term and
// flips the role. The term is already durable (PromoteTo saved it).
func (n *Node) becomeLeader(term uint64) {
	p := NewPrimary(PrimaryConfig{
		Term:        term,
		ClusterSize: len(n.cfg.Peers) + 1,
		Quorum:      n.cfg.Quorum,
		WAL:         n.cfg.Pipeline.WAL,
		AckTimeout:  n.cfg.AckTimeout,
		Advertise:   n.cfg.Addr,
		Clock:       n.clock,
		Snapshots:   n.cfg.Snapshots,
		Collector:   n.col,
		OnEvent:     n.cfg.OnEvent,
	})
	n.pmu.Lock()
	n.primary = p
	// The election certified this log as the most current among a
	// reachable quorum, and every batch a past leader acknowledged
	// lives on a quorum, so the whole local log is the acknowledged
	// prefix — the new leader commits its predecessors' entries.
	n.ackedSeq = n.fol.Seq()
	n.fol.Pipeline().SetReplicator(p)
	n.pmu.Unlock()
	n.fol.SetLeaderHint(n.cfg.Addr)
	n.mu.Lock()
	n.role = RoleLeader
	n.term = term
	n.leaderAddr = n.cfg.Addr
	n.isolatedSince = time.Time{}
	n.mu.Unlock()
	n.cfg.OnEvent(fmt.Sprintf("elected leader at term %d (seq %d)", term, n.fol.Seq()))
}

// leaderTick is one heartbeat round: re-attach any peer that is not a
// live follower (the rejoin path — a restarted or deposed node is
// caught up, or reseeded when diverged), then heartbeat everyone. A
// tick that proves this leader fenced, or that it has missed its
// delivery quorum for a full lease, demotes it and returns an error
// so Run re-reads the role.
func (n *Node) leaderTick() error {
	alive, err := n.attachAndHeartbeat()
	if err != nil {
		if errors.Is(err, serve.ErrFenced) {
			n.demote(fmt.Sprintf("fenced during a heartbeat round: %v", err))
		}
		return err
	}
	if alive+1 >= n.cfg.Quorum {
		n.clearIsolation()
		return nil
	}
	now := n.clock.Now()
	if n.isolationSpan(now) >= n.cfg.LeaseTimeout {
		// Step down rather than serve a minority side of a partition:
		// the majority side elects (or elected) its own leader, and our
		// unacknowledged writes are exactly the divergence reseed heals.
		err := fmt.Errorf("heartbeats reach %d of %d members: %w", alive+1, n.cfg.Quorum, ErrQuorumLost)
		n.demote(err.Error())
		return err
	}
	return nil
}

// isolationSpan records, under the state lock, that this tick missed
// the delivery quorum and returns how long the drought has lasted (zero
// on the tick that starts it). Demotions and re-elections reset the
// tracker from their own goroutines, hence the lock.
func (n *Node) isolationSpan(now time.Time) time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.isolatedSince.IsZero() {
		n.isolatedSince = now
	}
	return now.Sub(n.isolatedSince)
}

// clearIsolation resets the heartbeat-drought tracker.
func (n *Node) clearIsolation() {
	n.mu.Lock()
	n.isolatedSince = time.Time{}
	n.mu.Unlock()
}

// attachAndHeartbeat is one leader tick's fleet maintenance: re-attach
// every peer that is not a live follower, then heartbeat the fleet.
// Dialing happens outside the primary lock — an unreachable peer can
// burn a full connect timeout, and client ingestion (which needs the
// lock) must not stall behind it — and each handshake takes the lock
// individually, so ingest interleaves between attachments. Returns how
// many followers acknowledged; a fencing error (this term outranked by
// a peer's) surfaces for the caller to demote on — demote retakes the
// primary lock, so it cannot run here.
func (n *Node) attachAndHeartbeat() (alive int, err error) {
	n.pmu.Lock()
	p := n.primary
	var missing []string
	if p != nil {
		for _, peer := range n.cfg.Peers {
			if !p.HasLive(peer) {
				missing = append(missing, peer)
			}
		}
	}
	n.pmu.Unlock()
	if p == nil {
		return 0, errors.New("replica: no primary installed")
	}
	for _, peer := range missing {
		conn, derr := n.cfg.Dial(peer)
		if derr != nil {
			continue
		}
		if aerr := n.attachOne(p, peer, conn); aerr != nil {
			if errors.Is(aerr, serve.ErrFenced) {
				return 0, fmt.Errorf("attaching %s: %w", peer, aerr)
			}
			n.cfg.OnEvent(fmt.Sprintf("attach %s failed: %v", peer, aerr))
		}
	}
	n.pmu.Lock()
	defer n.pmu.Unlock()
	if n.primary != p {
		return 0, errors.New("replica: primary uninstalled mid-tick")
	}
	return p.Heartbeat(), nil
}

// attachOne hands one dialed connection to the primary under the lock,
// re-checking that the peer did not attach (and the primary was not
// uninstalled) while the dial ran.
func (n *Node) attachOne(p *Primary, peer string, conn net.Conn) error {
	n.pmu.Lock()
	defer n.pmu.Unlock()
	if n.primary != p {
		conn.Close()
		return errors.New("replica: primary uninstalled mid-tick")
	}
	if p.HasLive(peer) {
		conn.Close()
		return nil
	}
	if err := p.AddNamedFollower(peer, conn); err != nil {
		conn.Close()
		return err
	}
	n.cfg.OnEvent(fmt.Sprintf("attached %s at term %d", peer, p.Term()))
	return nil
}

// demote steps down from leading: uninstall and close the Primary,
// return to following with a fresh lease, and count the demotion.
// Safe to call from any goroutine; only the first caller acts.
func (n *Node) demote(reason string) {
	n.pmu.Lock()
	p := n.primary
	n.primary = nil
	if p != nil {
		n.fol.Pipeline().SetReplicator(nil)
		p.Close()
	}
	n.pmu.Unlock()
	if p == nil {
		return
	}
	n.col.Inc(stats.CtrReplDemotions)
	n.fol.SetLeaderHint("")
	n.mu.Lock()
	if n.role == RoleLeader {
		n.role = RoleFollower
	}
	if n.leaderAddr == n.cfg.Addr {
		// Stop vouching for our own deposed leadership in probe answers
		// and redirects; a successor (if any) overwrites this on attach.
		n.leaderAddr = ""
	}
	n.leaseUntil = n.clock.Now().Add(n.cfg.LeaseTimeout)
	n.isolatedSince = time.Time{}
	n.mu.Unlock()
	n.cfg.OnEvent("demoted: " + reason)
}

// severSession closes the active inbound replication session, if any:
// a lease expiry means the session is dead weight holding the
// pipeline, and the election (or the next leader) needs it released.
func (n *Node) severSession() {
	n.mu.Lock()
	s := n.session
	n.session = nil
	n.mu.Unlock()
	if s != nil {
		s.Close()
	}
}

// HandleConn serves one accepted connection: probes are answered
// statelessly, a Hello opens a replication session (superseding a
// stale one), a ClientHello opens an ingestion session. Runs on the
// acceptor's goroutine until the peer is done.
func (n *Node) HandleConn(conn net.Conn) error {
	for {
		fr, err := ReadFrame(conn)
		if err != nil {
			conn.Close()
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		switch fr.Type {
		case FrameProbe:
			if err := n.answerProbe(conn); err != nil {
				conn.Close()
				return err
			}
		case FrameHello:
			return n.serveReplication(conn, fr)
		case FrameClientHello:
			return n.serveClient(conn)
		default:
			conn.Close()
			return &FrameError{Reason: "node handshake",
				Err: fmt.Errorf("%w: unexpected frame type %d", ErrBadFrame, fr.Type)}
		}
	}
}

// answerProbe answers with the follower's durable state plus a leader
// hint that is only as fresh as the lease: a leader names itself, a
// follower under a live lease names its primary, and an expired lease
// hints nothing — so candidates never defer to a leader nobody has
// heard from.
func (n *Node) answerProbe(conn net.Conn) error {
	n.mu.Lock()
	leader := ""
	switch {
	case n.role == RoleLeader:
		leader = n.cfg.Addr
	case n.clock.Now().Before(n.leaseUntil):
		leader = n.leaderAddr
	}
	n.mu.Unlock()
	return n.fol.AnswerProbeLeader(conn, leader)
}

// serveReplication runs an inbound replication session. A claim below
// the adopted term — or equal to one this node itself promoted to — is
// refused without touching the live session; any other claim
// supersedes it (the current term's primary reconnecting, or a newer
// authority) — the superseded connection is closed so its session
// unwinds and the new one takes the pipeline.
func (n *Node) serveReplication(conn net.Conn, hello Frame) error {
	if hello.Term < n.fol.Term() || (hello.Term == n.fol.Term() && n.fol.selfClaimed()) {
		n.col.Inc(stats.CtrReplFenceRejects)
		WriteFrame(conn, Frame{Type: FrameReject, Term: n.fol.Term(), Seq: n.fol.Seq()})
		conn.Close()
		return fmt.Errorf("session claim at term %d, adopted term is %d: %w", hello.Term, n.fol.Term(), ErrStaleTerm)
	}
	old, nodeClosed := n.adoptSession(conn)
	if nodeClosed {
		conn.Close()
		return nil
	}
	if old != nil && old != conn {
		old.Close()
	}
	err := n.fol.ServeSession(conn, hello)
	conn.Close()
	n.releaseSession(conn)
	return err
}

// adoptSession installs conn as the node's live inbound session and
// returns the superseded one for the caller to close — unless the node
// is already shut down, in which case nothing is adopted.
func (n *Node) adoptSession(conn net.Conn) (old net.Conn, nodeClosed bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, true
	}
	old = n.session
	n.session = conn
	return old, false
}

// releaseSession clears the live-session slot if conn still owns it (a
// superseding session may have already taken it over).
func (n *Node) releaseSession(conn net.Conn) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.session == conn {
		n.session = nil
	}
}

// serveClient runs one client-ingestion session: Welcome with the
// durable sequence, then Submit/Ack rounds, every batch going through
// the ordinary leader pipeline (WAL, fsync, quorum replication). A
// node that is not — or stops being — the leader refuses with the
// redirect hint. Duplicate submissions (a client retrying across
// failover) are re-acked without re-applying; that plus the Welcome
// sequence is what keeps acked batches exactly-once under leadership
// changes.
func (n *Node) serveClient(conn net.Conn) error {
	defer conn.Close()
	refuse := func() error {
		n.mu.Lock()
		term, leader := n.term, n.leaderAddr
		isLeader := n.role == RoleLeader
		n.mu.Unlock()
		if isLeader {
			leader = n.cfg.Addr
		}
		n.col.Inc(stats.CtrReplRedirects)
		WriteFrame(conn, Frame{Type: FrameReject, Term: term, Payload: []byte(leader)})
		return &RedirectError{Leader: leader}
	}
	role, term := n.roleView()
	if role != RoleLeader {
		return refuse()
	}
	pipe := n.fol.Pipeline()
	if err := WriteFrame(conn, Frame{Type: FrameWelcome, Term: term, Seq: n.durableSeq()}); err != nil {
		return err
	}
	for {
		fr, err := ReadFrame(conn)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		if fr.Type != FrameSubmit {
			return &FrameError{Reason: "client session",
				Err: fmt.Errorf("%w: unexpected frame type %d", ErrBadFrame, fr.Type)}
		}
		role, term = n.roleView()
		if role != RoleLeader {
			return refuse()
		}
		batch, err := wal.DecodeBatch(fr.Payload)
		if err != nil {
			return &FrameError{Reason: "submit payload", Err: err}
		}
		// SLO backpressure gate: while the admission controller is in
		// its shedding posture, refuse before touching the pipeline so
		// a storm of submissions cannot pile onto an already-slow
		// quorum. The refusal is typed, retryable, and keeps the
		// session: the leader is healthy, just saturated.
		if n.slo.Level() >= serve.PressureShed {
			n.col.Inc(stats.CtrQueueShedSLO)
			if err := n.busyReject(conn, term, "!slo", n.slo.RetryAfter()); err != nil {
				return err
			}
			continue
		}
		// A Submit's Orig is the client's remaining deadline budget in
		// milliseconds; rebase it onto this node's clock so the quorum
		// wait downstream is bounded without any cross-host clock
		// agreement.
		var deadline time.Time
		if fr.Orig > 0 {
			deadline = n.clock.Now().Add(time.Duration(fr.Orig) * time.Millisecond)
		}
		start := n.clock.Now()
		outcome, durable, ierr := n.ingestSubmit(pipe, fr.Seq, batch, deadline)
		n.slo.Observe(n.clock.Now().Sub(start), 0, 1)
		switch outcome {
		case submitDuplicate:
			// Already durable (a retry across failover): re-ack, never
			// re-apply.
			n.col.Inc(stats.CtrReplDupFrames)
			if err := WriteFrame(conn, Frame{Type: FrameAck, Term: term, Seq: durable}); err != nil {
				return err
			}
			continue
		case submitGap:
			WriteFrame(conn, Frame{Type: FrameReject, Term: term, Seq: durable})
			return &FrameError{Reason: "client session",
				Err: fmt.Errorf("%w: submit seq %d skips durable seq %d", ErrBadFrame, fr.Seq, durable)}
		case submitStranded:
			// An ingest died between its local append and quorum: our WAL
			// holds a batch no client was ever acked for, which we can
			// neither acknowledge (the quorum never confirmed it) nor
			// accept a retry of (re-appending would double-log it). Step
			// down — rejoining hands the tail to the divergence reseed —
			// and send the client to whoever leads next.
			n.demote(fmt.Sprintf("client batch durable locally but not at quorum: %v", ierr))
			refuse()
			return ierr
		}
		if ierr != nil {
			if errors.Is(ierr, serve.ErrFenced) {
				// Deposed mid-ingest: the batch may be in our WAL but it
				// was never acknowledged, and the divergence machinery
				// reconciles it when we rejoin. Redirect the client.
				n.demote(fmt.Sprintf("fenced during client ingest: %v", ierr))
				refuse()
				return ierr
			}
			var de *serve.DeadlineError
			if errors.As(ierr, &de) {
				// The budget expired before the record reached the log:
				// nothing durable, nothing acknowledged, session healthy.
				// Tell the client which stage the deadline died in and
				// keep serving.
				if err := n.busyReject(conn, term, "!deadline:"+de.Stage, time.Millisecond); err != nil {
					return err
				}
				continue
			}
			if errors.Is(ierr, serve.ErrDiskPressure) {
				// Read-only under disk pressure: refuse with the disk
				// retry-after hint and keep the session — heartbeats and
				// reads still flow, and ingestion resumes the moment
				// space frees.
				if err := n.busyReject(conn, term, "!disk", n.cfg.DiskRetryAfter); err != nil {
					return err
				}
				continue
			}
			// Failed before the record reached the log: nothing is durable,
			// nothing was acknowledged. The client retries the same index.
			WriteFrame(conn, Frame{Type: FrameReject, Term: term, Seq: durable})
			return ierr
		}
		if err := WriteFrame(conn, Frame{Type: FrameAck, Term: term, Seq: durable}); err != nil {
			return err
		}
	}
}

// busyReject sends a backpressure refusal on a healthy leader session.
// Orig carries the retry-after hint in milliseconds — floored at 1,
// since Orig 0 would read as a redirect on the wire — and Seq the
// quorum-durable sequence so the client can still advance its acked
// prefix. The session stays open.
func (n *Node) busyReject(conn net.Conn, term uint64, marker string, after time.Duration) error {
	ms := uint64(after / time.Millisecond)
	if ms == 0 {
		ms = 1
	}
	return WriteFrame(conn, Frame{
		Type: FrameReject, Term: term, Seq: n.durableSeq(), Orig: ms, Payload: []byte(marker),
	})
}

// roleView reads the current role and term under the state lock.
func (n *Node) roleView() (Role, uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role, n.term
}

// durableSeq reads the quorum-acknowledged sequence under the primary
// lock, so it cannot interleave with a client ingest in flight. This —
// never the pipeline's local sequence, which runs ahead of quorum — is
// what Welcome frames and re-acks advertise: a client that is told a
// sequence is durable skips resubmitting it forever, so the promise
// must hold even if this leader is deposed and its tail reseeded away.
func (n *Node) durableSeq() uint64 {
	n.pmu.Lock()
	defer n.pmu.Unlock()
	return n.ackedSeq
}

// submitOutcome says what ingestSubmit did with a client batch.
type submitOutcome int

const (
	submitApplied   submitOutcome = iota // ran the pipeline; check the error
	submitDuplicate                      // at or below the quorum-acked sequence
	submitGap                            // skips ahead of the quorum-acked sequence
	submitStranded                       // the log holds a tail no quorum confirmed
)

// ingestSubmit runs one client submission through the leader pipeline
// under the primary lock: duplicate and gap detection against the
// quorum-acknowledged sequence, then the ordinary Ingest (WAL, fsync,
// quorum replication). The acknowledged sequence advances only when
// the batch is quorum-durable — on a nil error, or on a failure
// strictly after replication (apply/checkpoint stages) — and is what
// the returned durable value reports. An ingest that appends locally
// but never assembles its quorum strands the tail instead: the caller
// must stop serving, because acking or re-ingesting past it would
// break exactly-once.
func (n *Node) ingestSubmit(pipe *serve.Pipeline, seq uint64, batch []graph.Update, deadline time.Time) (submitOutcome, uint64, error) {
	n.pmu.Lock()
	defer n.pmu.Unlock()
	cur := n.ackedSeq
	switch {
	case seq <= cur:
		return submitDuplicate, cur, nil
	case seq > cur+1:
		return submitGap, cur, nil
	}
	if pipe.Seq() != cur {
		// A concurrent session already stranded a tail and its demote is
		// still in flight; refuse rather than append past it.
		return submitStranded, cur, fmt.Errorf(
			"replica: seq %d durable locally but never quorum-acknowledged: %w", pipe.Seq(), ErrQuorumLost)
	}
	err := pipe.IngestDeadline(batch, deadline)
	if err == nil || quorumDurable(err) {
		n.ackedSeq = pipe.Seq()
		return submitApplied, n.ackedSeq, err
	}
	if pipe.Seq() != cur && !errors.Is(err, serve.ErrFenced) {
		// Appended, never quorum-confirmed (ErrQuorumLost and kin). A
		// fenced failure takes the ordinary deposed path instead — it
		// demotes too, with the fencing term in the event trail.
		return submitStranded, cur, err
	}
	return submitApplied, cur, err
}

// quorumDurable reports whether a failed Ingest nevertheless made the
// batch quorum-durable: apply- and checkpoint-stage failures happen
// strictly after replication succeeded, so the batch must still be
// acknowledged — otherwise the client would resubmit a sequence the
// cluster already holds.
func quorumDurable(err error) bool {
	var ie *serve.IngestError
	return errors.As(err, &ie) && (ie.Stage == "apply" || ie.Stage == "checkpoint")
}

// Close shuts the node down: sever the active session, uninstall the
// primary, wait for the severed session to unwind, and close the
// pipeline — so a returned Close means nothing is applying records
// anymore and the node's states are safe to read. Cancel Run's context
// first.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	s := n.session
	n.session = nil
	n.mu.Unlock()
	if s != nil {
		s.Close()
	}
	n.pmu.Lock()
	p := n.primary
	n.primary = nil
	if p != nil {
		n.fol.Pipeline().SetReplicator(nil)
		p.Close()
	}
	n.pmu.Unlock()
	return n.fol.Close()
}
