// Package replica is the serve layer's replication transport: a
// primary ships the write-ahead log's records — sealed history and the
// live tail alike — to followers over any net.Conn, collects
// durability acknowledgements, and fences deposed primaries with a
// monotonic term number. The safety argument is the textbook one
// (quorum intersection): an acknowledged batch is fsynced on a
// majority, so the most-advanced survivor of any single-node loss
// holds every acknowledged batch, and promotion just replays its own
// log — the exact recovery path a solo pipeline already trusts.
package replica

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame types. The protocol is deliberately small: one handshake pair,
// one data frame, one ack, one refusal, a probe pair, a three-frame
// snapshot transfer for reseeding, a liveness heartbeat, and a
// client-ingestion pair for leader-routed submission.
const (
	// FrameHello opens a session, primary → follower: Term is the
	// primary's claim of authority, Seq is unused.
	FrameHello = 1
	// FrameWelcome accepts a session, follower → primary: Term echoes
	// the accepted term, Seq is the follower's last durable sequence —
	// the primary catches it up from Seq+1.
	FrameWelcome = 2
	// FrameRecord carries one WAL record, primary → follower: Seq is
	// the record's sequence, the payload is its EncodeBatch bytes.
	FrameRecord = 3
	// FrameAck confirms durability, follower → primary: Seq is the
	// follower's last durable-and-applied sequence.
	FrameAck = 4
	// FrameReject refuses a session or a record, follower → primary:
	// Term is the follower's (possibly newer) term, Seq its last
	// durable sequence. A reject with a newer term fences the primary.
	// Sent primary → follower it refuses the follower itself: its log
	// diverges from the primary's and it must be reseeded.
	FrameReject = 5
	// FrameProbe asks a follower for its durable term and log position
	// without claiming anything, primary → follower: a starting primary
	// probes every peer and claims max(term)+1, so no two primaries can
	// ever serve under the same term. Term and Seq are unused.
	FrameProbe = 6
	// FrameState answers a probe, follower → primary: Term is the
	// follower's durable term, Seq its last durable sequence, Orig the
	// origin term of its newest record. Nothing is adopted.
	FrameState = 7
	// FrameSnapOffer opens a snapshot transfer, primary → follower: Seq
	// is the WAL sequence the shipped checkpoint covers, the payload
	// describes the snapshot (size, checksum, meta sidecar, term
	// ledger). The follower answers with a FrameAck whose Seq is the
	// byte offset it already holds — 0 for a fresh transfer, the resume
	// point after a dropped connection — or a FrameReject if it cannot
	// install snapshots.
	FrameSnapOffer = 8
	// FrameSnapChunk carries one run of checkpoint bytes, primary →
	// follower: Seq is the chunk's byte offset into the snapshot file.
	// The follower acks each chunk with the new cumulative offset, so
	// the primary always knows the exact resume point.
	FrameSnapChunk = 9
	// FrameSnapDone ends the transfer, primary → follower: Seq repeats
	// the snapshot's covered sequence. The follower verifies the whole
	// file against the offered checksum, installs it atomically, and
	// acks with the installed sequence — or rejects a corrupt file.
	FrameSnapDone = 10
	// FrameHeartbeat asserts liveness, primary → follower: Term is the
	// primary's authority claim, Seq its committed log end. It carries
	// no payload and is never acknowledged — its only job is to renew
	// the follower's lease so elections stay quiet while the primary
	// breathes. A follower holding a newer term answers Reject, which
	// fences the sender at its next read.
	FrameHeartbeat = 11
	// FrameClientHello opens an ingestion session, client → node. The
	// leader answers FrameWelcome with Seq = its durable sequence (the
	// client resumes submitting past it); a non-leader answers
	// FrameReject whose payload is the leader's advertised address —
	// the redirect hint client failover follows.
	FrameClientHello = 12
	// FrameSubmit carries one update batch, client → leader: Seq is the
	// client's 1-based batch index (the single writer's indices coincide
	// with WAL sequences), the payload its EncodeBatch bytes, and Orig —
	// unused by every other client frame — the batch deadline as
	// milliseconds of remaining budget (0 = no deadline). Remaining
	// time, not an absolute instant, so propagation never depends on
	// clock agreement between client and leader. The leader answers
	// FrameAck at its durable sequence once the batch is quorum-durable,
	// re-acks duplicates without re-applying, and answers FrameReject
	// when it cannot take the batch. Two reject shapes share the type,
	// discriminated by Orig: Orig 0 is a redirect (payload = the
	// leader's advertised address, the failover hint) and Orig > 0 is
	// backpressure — the node IS the leader but refuses this batch
	// (payload = "!deadline:<stage>", "!disk" or "!slo"), with Orig the
	// retry-after hint in milliseconds that the client's backoff must
	// honor. Backpressure rejects keep the session open; Seq still
	// carries the durable sequence so the client can advance its acked
	// prefix.
	FrameSubmit = 13
)

const (
	frameMagic   = 0x54444750 // "TDGP"
	frameHdrSize = 37         // magic u32 | type u8 | term u64 | seq u64 | orig u64 | plen u32 | crc u32
	// maxFramePayload bounds a frame so a corrupted length field cannot
	// drive an allocation; matches the WAL's record bound.
	maxFramePayload = 1 << 30
)

// ErrBadFrame is the sentinel every malformed-frame failure wraps.
var ErrBadFrame = errors.New("replica: malformed frame")

// FrameError locates a wire-decoding failure. It always wraps
// ErrBadFrame (malformed bytes) or the underlying I/O error (transport
// death), never both ambiguously.
type FrameError struct {
	Reason string
	Err    error
}

func (e *FrameError) Error() string { return "replica: frame: " + e.Reason + ": " + e.Err.Error() }
func (e *FrameError) Unwrap() error { return e.Err }

// Frame is one protocol message. Term is always the sender's session
// (fencing) term; Orig is a second, per-record term: on FrameRecord it
// is the term under which the record was *created* (catch-up records
// keep their original term), on FrameWelcome and FrameState it is the
// origin term of the replica's newest record — the "tail stamp" the
// primary compares against its own term ledger to detect a divergent
// log at the handshake.
type Frame struct {
	Type    byte
	Term    uint64
	Seq     uint64
	Orig    uint64
	Payload []byte
}

// WriteFrame sends one frame in a single Write call — the fault
// injector's conn wrapper acts per Write, so one frame is one unit of
// drop/duplication/reordering/truncation.
func WriteFrame(w io.Writer, f Frame) error {
	buf := make([]byte, frameHdrSize+len(f.Payload))
	binary.LittleEndian.PutUint32(buf[0:4], frameMagic)
	buf[4] = f.Type
	binary.LittleEndian.PutUint64(buf[5:13], f.Term)
	binary.LittleEndian.PutUint64(buf[13:21], f.Seq)
	binary.LittleEndian.PutUint64(buf[21:29], f.Orig)
	binary.LittleEndian.PutUint32(buf[29:33], uint32(len(f.Payload)))
	copy(buf[frameHdrSize:], f.Payload)
	crc := crc32.ChecksumIEEE(buf[0:33])
	crc = crc32.Update(crc, crc32.IEEETable, f.Payload)
	binary.LittleEndian.PutUint32(buf[33:37], crc)
	if _, err := w.Write(buf); err != nil {
		return &FrameError{Reason: "write", Err: err}
	}
	return nil
}

// ReadFrame reads and validates one frame. Malformed bytes fail with a
// *FrameError wrapping ErrBadFrame; transport failures keep their
// underlying error (io.EOF passes through bare when the connection
// closes cleanly between frames).
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [frameHdrSize]byte
	n, err := io.ReadFull(r, hdr[:])
	if err != nil {
		if err == io.EOF && n == 0 {
			return Frame{}, io.EOF
		}
		return Frame{}, &FrameError{Reason: "short header", Err: err}
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != frameMagic {
		return Frame{}, &FrameError{Reason: "bad magic",
			Err: fmt.Errorf("%w: magic %#x", ErrBadFrame, binary.LittleEndian.Uint32(hdr[0:4]))}
	}
	f := Frame{
		Type: hdr[4],
		Term: binary.LittleEndian.Uint64(hdr[5:13]),
		Seq:  binary.LittleEndian.Uint64(hdr[13:21]),
		Orig: binary.LittleEndian.Uint64(hdr[21:29]),
	}
	plen := binary.LittleEndian.Uint32(hdr[29:33])
	wantCRC := binary.LittleEndian.Uint32(hdr[33:37])
	if f.Type < FrameHello || f.Type > FrameSubmit {
		return Frame{}, &FrameError{Reason: "bad type",
			Err: fmt.Errorf("%w: type %d", ErrBadFrame, f.Type)}
	}
	if plen > maxFramePayload {
		return Frame{}, &FrameError{Reason: "bad length",
			Err: fmt.Errorf("%w: implausible payload length %d", ErrBadFrame, plen)}
	}
	if plen > 0 {
		f.Payload = make([]byte, plen)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			return Frame{}, &FrameError{Reason: "short payload", Err: err}
		}
	}
	crc := crc32.ChecksumIEEE(hdr[0:33])
	crc = crc32.Update(crc, crc32.IEEETable, f.Payload)
	if crc != wantCRC {
		return Frame{}, &FrameError{Reason: "bad checksum",
			Err: fmt.Errorf("%w: frame checksum mismatch", ErrBadFrame)}
	}
	return f, nil
}
