package replica

import (
	"encoding/binary"
	"hash/crc32"
	"io"

	"github.com/tdgraph/tdgraph/internal/wal"
)

// The term is the cluster's fencing epoch: a promotion increments it
// durably *before* the new primary serves, so a deposed primary's
// frames (carrying the old term) are refused by every follower that
// heard about the promotion. The term must survive the same crashes
// the WAL survives, and the wal.FS seam has no rename, so it is stored
// in two independently-written slots — a torn write destroys at most
// one, and load takes the highest CRC-valid value.

const termMagic = 0x5444544D // "TDTM"

var termSlots = [2]string{"term.a", "term.b"}

// SaveTerm durably records term in dir (the WAL directory; the slot
// files do not parse as segment names, so the log ignores them). Each
// slot is written and fsynced in turn, then the directory entry is
// synced.
func SaveTerm(fs wal.FS, dir string, term uint64) error {
	var buf [16]byte
	binary.LittleEndian.PutUint32(buf[0:4], termMagic)
	binary.LittleEndian.PutUint64(buf[4:12], term)
	binary.LittleEndian.PutUint32(buf[12:16], crc32.ChecksumIEEE(buf[0:12]))
	for _, slot := range termSlots {
		f, err := fs.Create(dir + "/" + slot)
		if err != nil {
			return err
		}
		if _, err := f.Write(buf[:]); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return fs.SyncDir(dir)
}

// LoadTerm returns the highest valid stored term, 0 when none exists
// (a replica that has never heard of any primary).
func LoadTerm(fs wal.FS, dir string) (uint64, error) {
	best := uint64(0)
	for _, slot := range termSlots {
		f, err := fs.Open(dir + "/" + slot)
		if err != nil {
			continue // missing or unreadable slot: the other one decides
		}
		var buf [16]byte
		_, rerr := io.ReadFull(f, buf[:])
		f.Close()
		if rerr != nil {
			continue
		}
		if binary.LittleEndian.Uint32(buf[0:4]) != termMagic ||
			binary.LittleEndian.Uint32(buf[12:16]) != crc32.ChecksumIEEE(buf[0:12]) {
			continue
		}
		if t := binary.LittleEndian.Uint64(buf[4:12]); t > best {
			best = t
		}
	}
	return best, nil
}
