package replica

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	stdfs "io/fs"

	"github.com/tdgraph/tdgraph/internal/wal"
)

// The term is the cluster's fencing epoch: a promotion increments it
// durably *before* the new primary serves, and a starting primary
// claims one strictly greater than every term its reachable peers hold
// — so a deposed primary's frames (carrying an old term) are refused
// by every follower that heard about the promotion, and no two
// primaries can ever serve under the same term.
//
// Alongside the fencing term each replica keeps a term *ledger*: one
// (term, baseSeq) entry per term that originated records in its log,
// meaning "records from baseSeq up to the next entry's base were
// created under term". The ledger is the replication analogue of
// Raft's per-entry term: because a term has at most one primary and a
// follower only appends contiguously inside a verified session, two
// logs whose tails carry the same (origin term, seq) are identical
// through that seq — which lets a primary detect a rejoining replica
// whose log has silently diverged (e.g. a deposed primary restarted as
// a follower, resurrecting an unacknowledged tail the promoted log
// never had) instead of counting its acks toward quorum.
//
// Both live in one state file. It must survive the same crashes the
// WAL survives, and the wal.FS seam has no rename, so it is stored in
// two independently-written slots — a torn write destroys at most one,
// and load takes the best CRC-valid value.

const (
	termMagic   = 0x5444544D // "TDTM"
	termVersion = 2
	// maxLedgerEntries bounds the decode allocation; one entry exists
	// per term ever adopted, so real ledgers hold a handful.
	maxLedgerEntries = 4096
)

var termSlots = [2]string{"term.a", "term.b"}

// TermBase is one ledger entry: records with sequence >= Base (up to
// the next entry's base) were created under Term.
type TermBase struct {
	Term uint64
	Base uint64
}

// TermState is a replica's durable replication state: the fencing term
// and the origin-term ledger of its log.
type TermState struct {
	// Term is the highest term this replica has durably adopted; it
	// refuses sessions that do not claim a strictly greater one.
	Term uint64
	// Ledger maps log ranges to the terms that created them, ascending
	// in both Term and Base.
	Ledger []TermBase
}

// At returns the origin term of the record at seq, or 0 when the
// ledger does not cover it (pre-replication history, or seq 0).
func (s TermState) At(seq uint64) uint64 {
	if seq == 0 {
		return 0
	}
	t := uint64(0)
	for _, e := range s.Ledger {
		if e.Base <= seq {
			t = e.Term
		}
	}
	return t
}

// tail returns the newest ledger entry's term (0 for an empty ledger).
func (s TermState) tail() uint64 {
	if len(s.Ledger) == 0 {
		return 0
	}
	return s.Ledger[len(s.Ledger)-1].Term
}

// Stamp records that log sequences from base onward originate at term.
// Entries that claimed base or beyond are superseded (a crashed
// primary that never wrote a record under its claimed term is simply
// overwritten by the next claim at the same base).
func (s *TermState) Stamp(term, base uint64) {
	for len(s.Ledger) > 0 && s.Ledger[len(s.Ledger)-1].Base >= base {
		s.Ledger = s.Ledger[:len(s.Ledger)-1]
	}
	if term > s.tail() {
		s.Ledger = append(s.Ledger, TermBase{Term: term, Base: base})
	}
}

// SaveTermState durably records the state in dir (the WAL directory;
// the slot files do not parse as segment names, so the log ignores
// them). Each slot is written and fsynced in turn, then the directory
// entry is synced.
func SaveTermState(fs wal.FS, dir string, s TermState) error {
	if len(s.Ledger) > maxLedgerEntries {
		return fmt.Errorf("replica: term ledger overflow: %d entries", len(s.Ledger))
	}
	buf := make([]byte, 0, 19+16*len(s.Ledger)+4)
	buf = binary.LittleEndian.AppendUint32(buf, termMagic)
	buf = append(buf, termVersion)
	buf = binary.LittleEndian.AppendUint64(buf, s.Term)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s.Ledger)))
	for _, e := range s.Ledger {
		buf = binary.LittleEndian.AppendUint64(buf, e.Term)
		buf = binary.LittleEndian.AppendUint64(buf, e.Base)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	for _, slot := range termSlots {
		f, err := fs.Create(dir + "/" + slot)
		if err != nil {
			return err
		}
		if _, err := f.Write(buf); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return fs.SyncDir(dir)
}

// LoadTermState returns the best stored state — the valid slot with
// the highest term (ties broken by the longer ledger) — or the zero
// state when none exists (a replica that has never heard of any
// primary). A slot that is absent or torn mid-write is skipped; but if
// no slot is valid and any slot failed with a real I/O error, that
// error is returned rather than a forged zero term — a transiently
// erroring disk must not make a replica forget its adopted term and
// re-admit a deposed primary.
func LoadTermState(fs wal.FS, dir string) (TermState, error) {
	var best TermState
	found := false
	var ioErr error
	for _, slot := range termSlots {
		f, err := fs.Open(dir + "/" + slot)
		if err != nil {
			if !errors.Is(err, stdfs.ErrNotExist) && ioErr == nil {
				ioErr = fmt.Errorf("replica: opening term slot %s: %w", slot, err)
			}
			continue
		}
		data, rerr := io.ReadAll(f)
		f.Close()
		if rerr != nil {
			if ioErr == nil {
				ioErr = fmt.Errorf("replica: reading term slot %s: %w", slot, rerr)
			}
			continue
		}
		s, ok := decodeTermState(data)
		if !ok {
			continue // torn write: the other slot decides
		}
		if !found || s.Term > best.Term ||
			(s.Term == best.Term && len(s.Ledger) > len(best.Ledger)) {
			best, found = s, true
		}
	}
	if !found && ioErr != nil {
		return TermState{}, ioErr
	}
	return best, nil
}

func decodeTermState(data []byte) (TermState, bool) {
	if len(data) < 19+4 {
		return TermState{}, false
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return TermState{}, false
	}
	if binary.LittleEndian.Uint32(body[0:4]) != termMagic || body[4] != termVersion {
		return TermState{}, false
	}
	s := TermState{Term: binary.LittleEndian.Uint64(body[5:13])}
	n := int(binary.LittleEndian.Uint16(body[13:15]))
	if n > maxLedgerEntries || len(body) != 15+16*n {
		return TermState{}, false
	}
	for i := 0; i < n; i++ {
		off := 15 + 16*i
		s.Ledger = append(s.Ledger, TermBase{
			Term: binary.LittleEndian.Uint64(body[off : off+8]),
			Base: binary.LittleEndian.Uint64(body[off+8 : off+16]),
		})
	}
	return s, true
}

// ClaimTerm durably adopts term as this replica's fencing epoch and
// stamps the ledger so every record the replica appends from here on
// is attributed to it. The caller must have established uniqueness
// first (probe every reachable peer and claim strictly more than the
// maximum, or promote with term+1); a primary serving under an
// unclaimed term could resurrect it after a crash and split the
// cluster.
func ClaimTerm(opt wal.Options, term uint64) (TermState, error) {
	fs := opt.FS
	if fs == nil {
		fs = wal.OSFS{}
	}
	s, err := LoadTermState(fs, opt.Dir)
	if err != nil {
		return TermState{}, err
	}
	if term <= s.Term {
		return TermState{}, fmt.Errorf("%w: claiming term %d, already adopted %d", ErrStaleTerm, term, s.Term)
	}
	end, err := wal.EndSeq(opt)
	if err != nil {
		return TermState{}, err
	}
	s.Term = term
	s.Stamp(term, end+1)
	if err := SaveTermState(fs, opt.Dir, s); err != nil {
		return TermState{}, err
	}
	return s, nil
}
