package replica

import (
	"errors"
	"fmt"
	"net"
	"time"

	"github.com/tdgraph/tdgraph/internal/graph"
	"github.com/tdgraph/tdgraph/internal/serve"
	"github.com/tdgraph/tdgraph/internal/stats"
	"github.com/tdgraph/tdgraph/internal/wal"
)

// ErrStaleTerm reports a frame or session refused because a newer term
// exists: the sender has been deposed. It wraps serve.ErrFenced so the
// supervisor's one check — errors.Is(err, serve.ErrFenced) — fires
// through every layer of wrapping.
var ErrStaleTerm = fmt.Errorf("replica: stale term: %w", serve.ErrFenced)

// ErrFollowerBehind reports a follower whose log position cannot be
// served: it needs records retention has discarded (a full state
// transfer would be required), or it rejected a record as
// non-contiguous.
var ErrFollowerBehind = errors.New("replica: follower too far behind to catch up")

// ErrQuorumLost reports a Replicate call that could not assemble
// acknowledgements from a majority: the batch is durable locally and
// on the followers that acked, but the primary may no longer promise
// it survives losing a machine, so it must stop acknowledging.
var ErrQuorumLost = errors.New("replica: replication quorum lost")

// PrimaryConfig parameterises the shipping side.
type PrimaryConfig struct {
	// Term is this primary's authority claim; followers refuse smaller
	// terms. The caller persists it (SaveTerm) before serving.
	Term uint64
	// ClusterSize counts every replica including this primary; the
	// default quorum is a strict majority of it.
	ClusterSize int
	// Quorum overrides the majority rule when > 0 (counting the primary
	// itself as one ack).
	Quorum int
	// WAL locates the primary's log for catch-up shipping: a follower
	// that joins (or re-joins) behind the live tail is fed the backlog
	// from these segments before live records.
	WAL wal.Options
	// AckTimeout bounds the wait for one follower acknowledgement
	// (default 5s). A follower that misses it is dropped, not waited on.
	AckTimeout time.Duration
	// Collector receives the repl.* counters (nil = private).
	Collector *stats.Collector
	// OnEvent receives one line per notable event (nil discards).
	OnEvent func(string)
}

func (c PrimaryConfig) withDefaults() PrimaryConfig {
	if c.AckTimeout <= 0 {
		c.AckTimeout = 5 * time.Second
	}
	if c.Quorum <= 0 {
		c.Quorum = c.ClusterSize/2 + 1
	}
	if c.Collector == nil {
		c.Collector = stats.NewCollector()
	}
	if c.OnEvent == nil {
		c.OnEvent = func(string) {}
	}
	return c
}

// Primary ships WAL records to followers and implements
// serve.Replicator: the pipeline's Ingest blocks in Replicate until a
// quorum holds the batch durably. Primary is driven from the single
// serve goroutine; it is not safe for concurrent use.
type Primary struct {
	cfg       PrimaryConfig
	col       *stats.Collector
	followers []*followerConn
}

type followerConn struct {
	conn  net.Conn
	name  string
	acked uint64 // follower's last acknowledged (durable) sequence
	dead  bool
}

// NewPrimary returns a primary with no followers attached. The caller
// must have persisted cfg.Term with SaveTerm first; a primary serving
// under an unpersisted term could resurrect it after a crash and split
// the cluster.
func NewPrimary(cfg PrimaryConfig) *Primary {
	cfg = cfg.withDefaults()
	return &Primary{cfg: cfg, col: cfg.Collector}
}

// Term returns the primary's authority term.
func (p *Primary) Term() uint64 { return p.cfg.Term }

// Followers returns how many followers are attached and alive.
func (p *Primary) Followers() int {
	n := 0
	for _, fc := range p.followers {
		if !fc.dead {
			n++
		}
	}
	return n
}

// Acked returns the highest sequence each live follower has
// acknowledged, in attachment order (dead followers report 0).
func (p *Primary) Acked() []uint64 {
	out := make([]uint64, len(p.followers))
	for i, fc := range p.followers {
		if !fc.dead {
			out[i] = fc.acked
		}
	}
	return out
}

// AddFollower performs the handshake on conn and attaches the
// follower; any backlog it is missing ships lazily from the WAL on the
// next Replicate. A follower that answers with a newer term fences
// this primary (ErrStaleTerm); one whose position retention has
// discarded fails with ErrFollowerBehind on that first catch-up.
func (p *Primary) AddFollower(conn net.Conn) error {
	fc := &followerConn{conn: conn, name: fmt.Sprintf("follower-%d", len(p.followers))}
	if err := WriteFrame(conn, Frame{Type: FrameHello, Term: p.cfg.Term}); err != nil {
		return err
	}
	f, err := p.readFrame(fc)
	if err != nil {
		return err
	}
	switch f.Type {
	case FrameWelcome:
		fc.acked = f.Seq
	case FrameReject:
		if f.Term > p.cfg.Term {
			return fmt.Errorf("%w: follower holds term %d, ours is %d", ErrStaleTerm, f.Term, p.cfg.Term)
		}
		return fmt.Errorf("%w: handshake rejected at seq %d", ErrFollowerBehind, f.Seq)
	default:
		return &FrameError{Reason: "handshake",
			Err: fmt.Errorf("%w: unexpected frame type %d", ErrBadFrame, f.Type)}
	}
	p.followers = append(p.followers, fc)
	p.cfg.OnEvent(fmt.Sprintf("%s attached at seq %d", fc.name, fc.acked))
	return nil
}

// Replicate ships the batch at seq to every live follower — catching
// up any that lag from the WAL first — and succeeds once a quorum
// (counting this primary) holds it durably. Called by the pipeline
// with the record already in the local log.
func (p *Primary) Replicate(seq uint64, batch []graph.Update) error {
	payload := wal.EncodeBatch(batch)
	acks := 1 // the primary's own log counts
	var fenced error
	maxLag := uint64(0)
	for _, fc := range p.followers {
		if fc.dead {
			continue
		}
		if err := p.shipTo(fc, seq, payload); err != nil {
			if errors.Is(err, serve.ErrFenced) {
				fenced = err
				break
			}
			p.dropFollower(fc, err)
			continue
		}
		acks++
		p.col.Inc(stats.CtrReplAcks)
		if lag := seq - fc.acked; lag > maxLag {
			maxLag = lag
		}
	}
	p.col.Set(stats.CtrReplLag, maxLag)
	if fenced != nil {
		return fenced
	}
	if acks < p.cfg.Quorum {
		p.col.Inc(stats.CtrReplQuorumFailures)
		return fmt.Errorf("%w: %d of %d required acks for seq %d", ErrQuorumLost, acks, p.cfg.Quorum, seq)
	}
	return nil
}

// shipTo brings one follower to seq: backlog records from the WAL
// first when it lags, then the live record, each acknowledged before
// the next is sent (the transport may be synchronous, like net.Pipe).
func (p *Primary) shipTo(fc *followerConn, seq uint64, payload []byte) error {
	if fc.acked+1 < seq {
		if err := p.catchUp(fc, seq-1); err != nil {
			return err
		}
	}
	return p.sendRecord(fc, seq, payload, false)
}

// catchUp replays the primary's own WAL to the follower through
// sequence to. The tailer reads the same segments the pipeline writes;
// a follower wanting records retention has discarded cannot be served.
func (p *Primary) catchUp(fc *followerConn, to uint64) error {
	tl := wal.NewTailer(p.cfg.WAL, fc.acked+1)
	defer tl.Close()
	for fc.acked < to {
		seq, payload, err := tl.Next()
		if err != nil {
			if errors.Is(err, wal.ErrCompacted) {
				return fmt.Errorf("%w: needs seq %d: %v", ErrFollowerBehind, fc.acked+1, err)
			}
			if errors.Is(err, wal.ErrCaughtUp) {
				// The log ends before `to`: the caller asked for a record
				// that is not in the log, which is a protocol bug upstream.
				return fmt.Errorf("%w: log ends before seq %d", ErrFollowerBehind, to)
			}
			return err
		}
		if err := p.sendRecord(fc, seq, payload, true); err != nil {
			return err
		}
	}
	return nil
}

// sendRecord ships one record and waits for its acknowledgement.
// Acknowledgements below seq are stale — re-acks of frames a faulty
// wire duplicated — and are skipped, not errors.
func (p *Primary) sendRecord(fc *followerConn, seq uint64, payload []byte, catchup bool) error {
	if err := WriteFrame(fc.conn, Frame{Type: FrameRecord, Term: p.cfg.Term, Seq: seq, Payload: payload}); err != nil {
		return err
	}
	p.col.Inc(stats.CtrReplShippedRecords)
	p.col.Add(stats.CtrReplShippedBytes, uint64(len(payload)))
	if catchup {
		p.col.Inc(stats.CtrReplCatchupRecords)
	}
	for {
		f, err := p.readFrame(fc)
		if err != nil {
			return err
		}
		switch f.Type {
		case FrameAck:
			if f.Seq >= seq {
				fc.acked = f.Seq
				return nil
			}
			// Stale ack (duplicate frame re-acked): keep waiting.
		case FrameReject:
			if f.Term > p.cfg.Term {
				return fmt.Errorf("%w: follower moved to term %d, ours is %d", ErrStaleTerm, f.Term, p.cfg.Term)
			}
			return fmt.Errorf("%w: record %d rejected at follower seq %d", ErrFollowerBehind, seq, f.Seq)
		default:
			return &FrameError{Reason: "ack wait",
				Err: fmt.Errorf("%w: unexpected frame type %d", ErrBadFrame, f.Type)}
		}
	}
}

// readFrame reads one frame from the follower under the ack deadline.
func (p *Primary) readFrame(fc *followerConn) (Frame, error) {
	fc.conn.SetReadDeadline(time.Now().Add(p.cfg.AckTimeout))
	f, err := ReadFrame(fc.conn)
	fc.conn.SetReadDeadline(time.Time{})
	return f, err
}

func (p *Primary) dropFollower(fc *followerConn, cause error) {
	fc.dead = true
	fc.conn.Close()
	p.col.Inc(stats.CtrReplFollowerDrops)
	p.cfg.OnEvent(fmt.Sprintf("dropped %s at seq %d: %v", fc.name, fc.acked, cause))
}

// Close drops every follower connection.
func (p *Primary) Close() error {
	for _, fc := range p.followers {
		if !fc.dead {
			fc.dead = true
			fc.conn.Close()
		}
	}
	return nil
}
