package replica

import (
	"errors"
	"fmt"
	"net"
	"time"

	"github.com/tdgraph/tdgraph/internal/graph"
	"github.com/tdgraph/tdgraph/internal/serve"
	"github.com/tdgraph/tdgraph/internal/stats"
	"github.com/tdgraph/tdgraph/internal/wal"
)

// ErrStaleTerm reports a frame or session refused because a newer term
// exists: the sender has been deposed. It wraps serve.ErrFenced so the
// supervisor's one check — errors.Is(err, serve.ErrFenced) — fires
// through every layer of wrapping.
var ErrStaleTerm = fmt.Errorf("replica: stale term: %w", serve.ErrFenced)

// ErrFollowerBehind reports a follower whose log position cannot be
// served: it needs records retention has discarded (a full state
// transfer would be required), or it rejected a record as
// non-contiguous.
var ErrFollowerBehind = errors.New("replica: follower too far behind to catch up")

// ErrFollowerDiverged reports a replica whose log conflicts with the
// primary's and therefore cannot be attached: it is ahead of the
// primary's log end, or its newest record originates from a term the
// primary's log attributes differently at that sequence. Typically a
// deposed primary restarted as a follower, whose WAL replay
// resurrected an unacknowledged tail the promoted log never had. Its
// acks must not count toward quorum; it needs a reseed (wipe its data
// directory and rejoin empty), not catch-up.
var ErrFollowerDiverged = errors.New("replica: follower log diverges from the primary's")

// ErrQuorumLost reports a Replicate call that could not assemble
// acknowledgements from a majority: the batch is durable locally and
// on the followers that acked, but the primary may no longer promise
// it survives losing a machine, so it must stop acknowledging.
var ErrQuorumLost = errors.New("replica: replication quorum lost")

// PrimaryConfig parameterises the shipping side.
type PrimaryConfig struct {
	// Term is this primary's authority claim; followers refuse any
	// session that does not claim strictly more than they hold. The
	// caller persists it (ClaimTerm) before serving, after probing
	// every reachable peer so the claim is unique.
	Term uint64
	// ClusterSize counts every replica including this primary; the
	// default quorum is a strict majority of it.
	ClusterSize int
	// Quorum overrides the majority rule when > 0 (counting the primary
	// itself as one ack).
	Quorum int
	// WAL locates the primary's log for catch-up shipping: a follower
	// that joins (or re-joins) behind the live tail is fed the backlog
	// from these segments before live records.
	WAL wal.Options
	// AckTimeout bounds the wait for one follower acknowledgement
	// (default 5s). A follower that misses it is dropped, not waited on.
	AckTimeout time.Duration
	// Advertise is the address clients and followers should reach this
	// primary's node at; it rides in the Hello payload so followers can
	// hand it out as the redirect hint. Empty is fine for operator-run
	// clusters with no client failover.
	Advertise string
	// Clock supplies the wall times used for connection deadlines
	// (default real time). Election and lease logic never reads the
	// clock directly — the tdgraph-vet clock-discipline check enforces
	// that everything in this package flows through this seam.
	Clock serve.Clock
	// Snapshots, when set, enables reseeding: a follower that is behind
	// retention or whose log diverges is shipped the newest checkpoint
	// instead of being refused. Nil keeps PR 4's refuse-only behavior.
	Snapshots SnapshotSource
	// SnapChunkBytes bounds one snapshot chunk frame (default 256 KiB).
	SnapChunkBytes int
	// Collector receives the repl.* counters (nil = private).
	Collector *stats.Collector
	// OnEvent receives one line per notable event (nil discards).
	OnEvent func(string)
}

func (c PrimaryConfig) withDefaults() PrimaryConfig {
	if c.AckTimeout <= 0 {
		c.AckTimeout = 5 * time.Second
	}
	if c.Quorum <= 0 {
		c.Quorum = c.ClusterSize/2 + 1
	}
	if c.SnapChunkBytes <= 0 {
		c.SnapChunkBytes = 256 << 10
	}
	if c.Clock == nil {
		c.Clock = serve.RealClock{}
	}
	if c.Collector == nil {
		c.Collector = stats.NewCollector()
	}
	if c.OnEvent == nil {
		c.OnEvent = func(string) {}
	}
	return c
}

// Primary ships WAL records to followers and implements
// serve.Replicator: the pipeline's Ingest blocks in Replicate until a
// quorum holds the batch durably. Primary is driven from the single
// serve goroutine; it is not safe for concurrent use.
type Primary struct {
	cfg       PrimaryConfig
	col       *stats.Collector
	followers []*followerConn

	// state is the primary's own term ledger and seq its log-end
	// sequence, loaded from the WAL directory at the first handshake
	// (ClaimTerm persisted both before this primary started serving)
	// and kept current by Replicate.
	state       TermState
	seq         uint64
	stateLoaded bool

	// pendingShip pins WAL retention (RetainFloor) at the covered
	// sequence of a snapshot transfer that was offered but has not
	// completed, so an interrupted follower can still resume and tail
	// from there. Cleared when the install is acknowledged.
	pendingShip    uint64
	pendingShipSet bool
}

type followerConn struct {
	conn  net.Conn
	name  string
	acked uint64 // follower's last acknowledged (durable) sequence
	dead  bool
}

// NewPrimary returns a primary with no followers attached. The caller
// must have persisted cfg.Term with ClaimTerm first; a primary serving
// under an unpersisted term could resurrect it after a crash and split
// the cluster.
func NewPrimary(cfg PrimaryConfig) *Primary {
	cfg = cfg.withDefaults()
	return &Primary{cfg: cfg, col: cfg.Collector}
}

// Term returns the primary's authority term.
func (p *Primary) Term() uint64 { return p.cfg.Term }

// Followers returns how many followers are attached and alive.
func (p *Primary) Followers() int {
	n := 0
	for _, fc := range p.followers {
		if !fc.dead {
			n++
		}
	}
	return n
}

// HasLive reports whether a live follower attached under name.
func (p *Primary) HasLive(name string) bool {
	for _, fc := range p.followers {
		if !fc.dead && fc.name == name {
			return true
		}
	}
	return false
}

// Heartbeat asserts this primary's liveness to every live follower:
// one write-only FrameHeartbeat carrying the term and the log-end
// sequence. Heartbeats are never acknowledged — the next frame read on
// a session is still the next record's ack — so a quiet cluster pays
// one frame per follower per tick, not a round trip. A follower whose
// transport refuses the write is dropped exactly as a missed ack would
// drop it. Returns how many followers are alive after the sweep, the
// number the caller compares against its quorum to notice it has been
// isolated.
func (p *Primary) Heartbeat() int {
	alive := 0
	for _, fc := range p.followers {
		if fc.dead {
			continue
		}
		if err := p.writeFrame(fc, Frame{Type: FrameHeartbeat, Term: p.cfg.Term, Seq: p.seq}); err != nil {
			p.dropFollower(fc, err)
			continue
		}
		p.col.Inc(stats.CtrReplHeartbeatsSent)
		alive++
	}
	return alive
}

// Acked returns the highest sequence each live follower has
// acknowledged, in attachment order (dead followers report 0).
func (p *Primary) Acked() []uint64 {
	out := make([]uint64, len(p.followers))
	for i, fc := range p.followers {
		if !fc.dead {
			out[i] = fc.acked
		}
	}
	return out
}

// AddFollower performs the handshake on conn and attaches the
// follower; any backlog it is missing ships lazily from the WAL on the
// next Replicate. A follower that answers with a newer-or-equal term
// fences this primary (ErrStaleTerm — terms are claimed strictly above
// every probed peer, so an equal term means another primary claimed it
// first). One whose log conflicts with ours — ahead of our log end, or
// tail-stamped by a term our ledger contradicts — or whose position
// retention has discarded is reseeded on the spot when a SnapshotSource
// is configured: the newest checkpoint ships before the follower
// attaches, and it joins catch-up from the installed sequence. Without
// a source the old refusals stand: ErrFollowerDiverged at the
// handshake, ErrFollowerBehind at the first catch-up.
func (p *Primary) AddFollower(conn net.Conn) error {
	return p.AddNamedFollower("", conn)
}

// AddNamedFollower is AddFollower with a caller-chosen name — the
// peer's address, for a Node-managed cluster — so the automation layer
// can tell which peers are attached (HasLive) and keep re-dialing the
// rest. An empty name gets the attachment-ordered default.
func (p *Primary) AddNamedFollower(name string, conn net.Conn) error {
	if !p.stateLoaded {
		st, err := LoadTermState(p.walFS(), p.cfg.WAL.Dir)
		if err != nil {
			return err
		}
		p.state, p.stateLoaded = st, true
	}
	// The ledger is static while we serve (ClaimTerm wrote it before
	// this primary started), but the log end moves: re-scan it so a
	// late attach compares against the current tail, not the tail at
	// first handshake.
	if end, err := wal.EndSeq(p.cfg.WAL); err != nil {
		return err
	} else if end > p.seq {
		p.seq = end
	}
	if name == "" {
		name = fmt.Sprintf("follower-%d", len(p.followers))
	}
	fc := &followerConn{conn: conn, name: name}
	if err := p.writeFrame(fc, Frame{Type: FrameHello, Term: p.cfg.Term, Payload: []byte(p.cfg.Advertise)}); err != nil {
		return err
	}
	f, err := p.readFrame(fc)
	if err != nil {
		return err
	}
	switch f.Type {
	case FrameWelcome:
		if derr := p.checkDivergence(f); derr != nil {
			p.col.Inc(stats.CtrReplDivergedRejects)
			if p.cfg.Snapshots == nil {
				p.cfg.OnEvent(fmt.Sprintf("refused diverged replica at seq %d (stamp %d): %v", f.Seq, f.Orig, derr))
				p.writeFrame(fc, Frame{Type: FrameReject, Term: p.cfg.Term, Seq: p.seq})
				return derr
			}
			p.cfg.OnEvent(fmt.Sprintf("reseeding diverged replica at seq %d (stamp %d): %v", f.Seq, f.Orig, derr))
			if _, rerr := p.reseed(fc); rerr != nil {
				return fmt.Errorf("%w; reseed failed: %w", derr, rerr)
			}
		} else {
			fc.acked = f.Seq
			if rerr := p.reseedIfCompacted(fc); rerr != nil {
				return rerr
			}
		}
	case FrameReject:
		if f.Term >= p.cfg.Term {
			return fmt.Errorf("%w: follower holds term %d, ours is %d", ErrStaleTerm, f.Term, p.cfg.Term)
		}
		return fmt.Errorf("%w: handshake rejected at seq %d", ErrFollowerBehind, f.Seq)
	default:
		return &FrameError{Reason: "handshake",
			Err: fmt.Errorf("%w: unexpected frame type %d", ErrBadFrame, f.Type)}
	}
	// Ship the backlog right away: an attach may be the rejoin of a
	// lagging or freshly reseeded replica on an otherwise idle leader,
	// and it must not have to wait for the next client batch to
	// converge.
	if fc.acked < p.seq {
		if err := p.catchUp(fc, p.seq); err != nil {
			return err
		}
	}
	p.followers = append(p.followers, fc)
	p.cfg.OnEvent(fmt.Sprintf("%s attached at seq %d", fc.name, fc.acked))
	return nil
}

// checkDivergence decides whether the log a Welcome describes can have
// grown out of ours. A follower ahead of our log end holds records we
// never had (a resurrected unacknowledged tail); one whose tail stamp
// names a different origin term than our ledger assigns that sequence
// holds a conflicting record at it. Either way re-acking it would
// silently corrupt quorum accounting. An unstamped tail (Orig 0:
// history that predates the ledger) cannot be checked and is accepted
// — divergence detection covers replicated history.
func (p *Primary) checkDivergence(f Frame) error {
	if f.Seq > p.seq {
		return fmt.Errorf("%w: follower at seq %d, our log ends at %d", ErrFollowerDiverged, f.Seq, p.seq)
	}
	if f.Seq > 0 && f.Orig != 0 {
		if mine := p.state.At(f.Seq); mine != 0 && mine != f.Orig {
			return fmt.Errorf("%w: follower's record %d originates at term %d, ours at term %d",
				ErrFollowerDiverged, f.Seq, f.Orig, mine)
		}
	}
	return nil
}

// reseedIfCompacted ships a snapshot at attach time to a follower
// whose next needed record retention has already discarded — waiting
// for the first catch-up to trip over wal.ErrCompacted would just
// fail later. Without a snapshot source this is a no-op; the first
// catch-up then reports ErrFollowerBehind as before.
func (p *Primary) reseedIfCompacted(fc *followerConn) error {
	if p.cfg.Snapshots == nil {
		return nil
	}
	start, err := wal.StartSeq(p.cfg.WAL)
	if err != nil {
		return err
	}
	if start == 0 || fc.acked+1 >= start {
		return nil
	}
	p.cfg.OnEvent(fmt.Sprintf("reseeding %s at seq %d: oldest retained record is seq %d", fc.name, fc.acked, start))
	if _, rerr := p.reseed(fc); rerr != nil {
		return fmt.Errorf("%w: needs seq %d, oldest retained is %d; reseed failed: %w",
			ErrFollowerBehind, fc.acked+1, start, rerr)
	}
	return nil
}

func (p *Primary) walFS() wal.FS {
	if p.cfg.WAL.FS != nil {
		return p.cfg.WAL.FS
	}
	return wal.OSFS{}
}

// PeerState is one probe answer: the peer's durable term, its last
// durable sequence, the origin term of its newest record (the
// up-to-dateness key elections compare), and the address of the leader
// it currently follows ("" when it follows none).
type PeerState struct {
	Term   uint64
	Seq    uint64
	Orig   uint64
	Leader string
}

// Probe asks the replica serving conn for its durable term and log
// position without claiming or adopting anything. A starting primary
// probes every reachable peer and claims strictly more than the
// maximum term it sees (and its own stored one), which is what makes
// terms unique: a deposed primary restarting cannot re-claim a term
// its successors already hold. Elections additionally compare the
// returned origin term and sequence to find the most-up-to-date
// candidate. The clock supplies the I/O deadline (nil = real time).
func Probe(conn net.Conn, timeout time.Duration, clock serve.Clock) (PeerState, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	if clock == nil {
		clock = serve.RealClock{}
	}
	conn.SetDeadline(clock.Now().Add(timeout))
	defer conn.SetDeadline(time.Time{})
	if err := WriteFrame(conn, Frame{Type: FrameProbe}); err != nil {
		return PeerState{}, err
	}
	f, err := ReadFrame(conn)
	if err != nil {
		return PeerState{}, err
	}
	if f.Type != FrameState {
		return PeerState{}, &FrameError{Reason: "probe",
			Err: fmt.Errorf("%w: unexpected frame type %d", ErrBadFrame, f.Type)}
	}
	return PeerState{Term: f.Term, Seq: f.Seq, Orig: f.Orig, Leader: string(f.Payload)}, nil
}

// ProbeState is Probe reduced to the term-discovery pair a starting
// primary needs.
func ProbeState(conn net.Conn, timeout time.Duration) (term, seq uint64, err error) {
	st, err := Probe(conn, timeout, nil)
	if err != nil {
		return 0, 0, err
	}
	return st.Term, st.Seq, nil
}

// Replicate ships the batch at seq to every live follower — catching
// up any that lag from the WAL first — and succeeds once a quorum
// (counting this primary) holds it durably. Called by the pipeline
// with the record already in the local log.
func (p *Primary) Replicate(seq uint64, batch []graph.Update) error {
	return p.replicate(seq, batch, time.Time{})
}

// ReplicateDeadline implements serve.DeadlineReplicator: Replicate
// with the quorum wait bounded by the batch deadline. The deadline is
// checked between follower round trips only — per-operation I/O stays
// under AckTimeout, so a tight client budget can never sever a live
// follower session or abandon a half-read frame; the worst-case
// overshoot is one AckTimeout past the deadline. On expiry the
// remaining followers are skipped: if a quorum already acked, the
// batch is durable and succeeds as usual; otherwise the failure wraps
// *serve.DeadlineError at stage "replicate", and the caller treats the
// locally-appended, never-quorum-confirmed tail exactly like any other
// quorum loss.
func (p *Primary) ReplicateDeadline(seq uint64, batch []graph.Update, deadline time.Time) error {
	return p.replicate(seq, batch, deadline)
}

func (p *Primary) replicate(seq uint64, batch []graph.Update, deadline time.Time) error {
	if seq > p.seq {
		p.seq = seq // the record is already in the local log
	}
	payload := wal.EncodeBatch(batch)
	acks := 1 // the primary's own log counts
	expired := false
	var fenced error
	maxLag := uint64(0)
	for _, fc := range p.followers {
		if fc.dead {
			continue
		}
		if !deadline.IsZero() && !p.cfg.Clock.Now().Before(deadline) {
			expired = true
			break
		}
		// Lag is how far this follower trailed when the batch arrived,
		// measured before shipping closes the gap (afterwards acked has
		// caught up to seq and the gauge would always read 0).
		if seq > fc.acked {
			if lag := seq - fc.acked; lag > maxLag {
				maxLag = lag
			}
		}
		if err := p.shipTo(fc, seq, payload); err != nil {
			if errors.Is(err, serve.ErrFenced) {
				fenced = err
				break
			}
			p.dropFollower(fc, err)
			continue
		}
		acks++
		p.col.Inc(stats.CtrReplAcks)
	}
	p.col.Set(stats.CtrReplLag, maxLag)
	if fenced != nil {
		return fenced
	}
	if acks < p.cfg.Quorum {
		if expired {
			return fmt.Errorf("replica: %d of %d acks for seq %d when the batch deadline expired: %w",
				acks, p.cfg.Quorum, seq, serve.NewDeadlineError("replicate"))
		}
		p.col.Inc(stats.CtrReplQuorumFailures)
		return fmt.Errorf("%w: %d of %d required acks for seq %d", ErrQuorumLost, acks, p.cfg.Quorum, seq)
	}
	return nil
}

// shipTo brings one follower to seq: backlog records from the WAL
// first when it lags, then the live record, each acknowledged before
// the next is sent (the transport may be synchronous, like net.Pipe).
func (p *Primary) shipTo(fc *followerConn, seq uint64, payload []byte) error {
	if fc.acked+1 < seq {
		if err := p.catchUp(fc, seq-1); err != nil {
			return err
		}
	}
	return p.sendRecord(fc, seq, payload, false)
}

// catchUp replays the primary's own WAL to the follower through
// sequence to. The tailer reads the same segments the pipeline writes;
// a follower wanting records retention has discarded is reseeded from
// the newest checkpoint mid-stream (re-tailing from the installed
// sequence) when a snapshot source exists, and cannot be served
// otherwise.
func (p *Primary) catchUp(fc *followerConn, to uint64) error {
	tl := wal.NewTailer(p.cfg.WAL, fc.acked+1)
	defer func() { tl.Close() }()
	for fc.acked < to {
		seq, payload, err := tl.Next()
		if err != nil {
			if errors.Is(err, wal.ErrCompacted) {
				if p.cfg.Snapshots != nil {
					snapSeq, rerr := p.reseed(fc)
					if rerr != nil {
						return fmt.Errorf("%w: needs seq %d; reseed failed: %w", ErrFollowerBehind, fc.acked+1, rerr)
					}
					tl.Close()
					tl = wal.NewTailer(p.cfg.WAL, snapSeq+1)
					continue
				}
				return fmt.Errorf("%w: needs seq %d: %w", ErrFollowerBehind, fc.acked+1, err)
			}
			if errors.Is(err, wal.ErrCaughtUp) {
				// The log ends before `to`: the caller asked for a record
				// that is not in the log, which is a protocol bug upstream.
				return fmt.Errorf("%w: log ends before seq %d", ErrFollowerBehind, to)
			}
			return err
		}
		if err := p.sendRecord(fc, seq, payload, true); err != nil {
			return err
		}
	}
	return nil
}

// sendRecord ships one record and waits for its acknowledgement.
// Acknowledgements below seq are stale — re-acks of frames a faulty
// wire duplicated — and are skipped, not errors. Each record carries
// its origin term from the primary's ledger (catch-up records keep the
// term that created them, not this session's), so followers can stamp
// their own ledgers identically.
func (p *Primary) sendRecord(fc *followerConn, seq uint64, payload []byte, catchup bool) error {
	fr := Frame{Type: FrameRecord, Term: p.cfg.Term, Seq: seq, Orig: p.state.At(seq), Payload: payload}
	if err := p.writeFrame(fc, fr); err != nil {
		return err
	}
	p.col.Inc(stats.CtrReplShippedRecords)
	p.col.Add(stats.CtrReplShippedBytes, uint64(len(payload)))
	if catchup {
		p.col.Inc(stats.CtrReplCatchupRecords)
	}
	for {
		f, err := p.readFrame(fc)
		if err != nil {
			return err
		}
		switch f.Type {
		case FrameAck:
			if f.Seq >= seq {
				fc.acked = f.Seq
				return nil
			}
			// Stale ack (duplicate frame re-acked): keep waiting.
		case FrameReject:
			if f.Term > p.cfg.Term {
				return fmt.Errorf("%w: follower moved to term %d, ours is %d", ErrStaleTerm, f.Term, p.cfg.Term)
			}
			return fmt.Errorf("%w: record %d rejected at follower seq %d", ErrFollowerBehind, seq, f.Seq)
		default:
			return &FrameError{Reason: "ack wait",
				Err: fmt.Errorf("%w: unexpected frame type %d", ErrBadFrame, f.Type)}
		}
	}
}

// readFrame reads one frame from the follower under the ack deadline.
func (p *Primary) readFrame(fc *followerConn) (Frame, error) {
	fc.conn.SetReadDeadline(p.cfg.Clock.Now().Add(p.cfg.AckTimeout))
	f, err := ReadFrame(fc.conn)
	fc.conn.SetReadDeadline(time.Time{})
	return f, err
}

// writeFrame sends one frame to the follower under the same deadline
// reads honor: a stalled-but-connected follower (full TCP send buffer
// during a large catch-up, say) must not block Replicate — and with it
// Ingest and the whole serve loop — indefinitely. On timeout the
// caller drops the follower, mirroring a missed ack.
func (p *Primary) writeFrame(fc *followerConn, f Frame) error {
	fc.conn.SetWriteDeadline(p.cfg.Clock.Now().Add(p.cfg.AckTimeout))
	err := WriteFrame(fc.conn, f)
	fc.conn.SetWriteDeadline(time.Time{})
	return err
}

func (p *Primary) dropFollower(fc *followerConn, cause error) {
	fc.dead = true
	fc.conn.Close()
	p.col.Inc(stats.CtrReplFollowerDrops)
	p.cfg.OnEvent(fmt.Sprintf("dropped %s at seq %d: %v", fc.name, fc.acked, cause))
}

// Close drops every follower connection.
func (p *Primary) Close() error {
	for _, fc := range p.followers {
		if !fc.dead {
			fc.dead = true
			fc.conn.Close()
		}
	}
	return nil
}
