package replica

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/tdgraph/tdgraph/internal/fault"
	"github.com/tdgraph/tdgraph/internal/serve"
	"github.com/tdgraph/tdgraph/internal/stats"
	"github.com/tdgraph/tdgraph/internal/stream"
	"github.com/tdgraph/tdgraph/internal/wal"
)

// These trials drive the overload ladder end to end: a WAL volume that
// fills mid-ingest (read-only degradation, typed busy rejections,
// automatic resume) and a client deadline storm against a slow quorum
// (in-flight expiries, reconnect/adopt recovery, exactly-once). Like
// the rest of the chaos suites, each trial is run twice and the
// converged digest must be identical.

// stepWait polls pred while firing manual-clock timers, so trials that
// mix clock-driven machinery (heartbeats, retry backoff) with
// real-goroutine progress (pipe round trips) can wait for the latter
// without deadlocking the former.
func stepWait(t *testing.T, clk *manualClock, what string, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if pred() {
			return
		}
		clk.step()
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

type diskPressureDigest struct {
	acked     uint64
	height    uint64
	entries   uint64
	exits     uint64
	stateHash uint64
}

// runDiskPressureTrial fills the WAL volume mid-ingest on a solo
// leader, checks the busy-reject wire shape while the node is
// read-only, frees the space, and requires the client to finish with
// zero acked-batch loss — everything on the manual clock.
func runDiskPressureTrial(t *testing.T, trial int) diskPressureDigest {
	t.Helper()
	clk := newManualClock()
	fabric := newMemNet()
	w := testWorkload(t, 8)
	want := referenceStates(t, w)

	cfg := nodeConfig(w, t.TempDir())
	cfg.CheckpointEvery = -1 // no retention credits: only AddDiskSpace frees
	inj := fault.New(int64(40 + trial))
	// Room for the election's term record and roughly half the
	// workload's WAL records; the rest of the run hits ENOSPC.
	inj.Arm(fault.NoSpace, 1500)
	cfg.WAL.FS = inj.FS(wal.OSFS{})

	n, err := NewNode(NodeConfig{
		Addr:           "solo",
		Dial:           fabric.dial,
		Pipeline:       cfg,
		HeartbeatEvery: time.Second,
		Seed:           42,
		Clock:          clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	fabric.add("solo", n)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ran := make(chan error, 1)
	go func() { ran <- n.Run(ctx) }()
	driveUntil(t, clk, "solo leadership", func() bool { return n.Role() == RoleLeader })

	cl, err := NewClient(ClientConfig{
		Nodes:       []string{"solo"},
		Dial:        fabric.dial,
		AckTimeout:  time.Minute, // manual-clock epoch: conn deadlines never fire
		MaxAttempts: 500,
		Seed:        int64(trial),
		Backoff:     &serve.Backoff{Base: time.Millisecond, Max: 50 * time.Millisecond, Multiplier: 2},
		Breaker:     serve.NewBreaker(1000, 50*time.Millisecond, clk),
		Clock:       clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	clientDone := make(chan error, 1)
	var done atomic.Bool
	go func() {
		err := cl.Run(context.Background(), w.Batches)
		done.Store(true)
		clientDone <- err
	}()

	// The volume fills mid-run: the node must degrade to read-only and
	// keep refusing (typed, retryable) without crashing or demoting.
	col := n.Follower().Pipeline().Collector()
	stepWait(t, clk, "read-only under disk pressure", func() bool {
		return n.Follower().Pipeline().ReadOnly() &&
			col.Get(stats.CtrServeDiskPressure) >= 1
	})
	if got := n.Role(); got != RoleLeader {
		t.Fatalf("disk pressure cost the node its leadership: %s", got)
	}
	if got := col.Get(stats.CtrServeReadonlyEntries); got != 1 {
		t.Fatalf("readonly entries = %d, want 1", got)
	}

	// Raw-frame probe of the busy reject: Orig > 0 (the retry-after
	// hint, distinguishing it from a redirect), the "!disk" marker, the
	// durable sequence — and the session must survive the refusal.
	conn, err := fabric.dial("solo")
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(conn, Frame{Type: FrameClientHello}); err != nil {
		t.Fatal(err)
	}
	fr, err := ReadFrame(conn)
	if err != nil || fr.Type != FrameWelcome {
		t.Fatalf("handshake while read-only: %+v, %v, want a Welcome", fr, err)
	}
	durable := fr.Seq
	if durable == 0 || durable >= uint64(len(w.Batches)) {
		t.Fatalf("durable seq %d at the fill, want mid-workload", durable)
	}
	for round := 0; round < 2; round++ {
		probe := Frame{Type: FrameSubmit, Seq: durable + 1, Payload: wal.EncodeBatch(w.Batches[durable])}
		if err := WriteFrame(conn, probe); err != nil {
			t.Fatalf("probe round %d: the busy reject dropped the session: %v", round, err)
		}
		ans, err := ReadFrame(conn)
		if err != nil || ans.Type != FrameReject {
			t.Fatalf("probe round %d: %+v, %v, want a Reject", round, ans, err)
		}
		if ans.Orig == 0 {
			t.Fatalf("probe round %d: busy reject lost its retry-after (reads as a redirect)", round)
		}
		if string(ans.Payload) != "!disk" {
			t.Fatalf("probe round %d: marker %q, want !disk", round, ans.Payload)
		}
		if ans.Seq != durable {
			t.Fatalf("probe round %d: reject seq %d, want durable %d", round, ans.Seq, durable)
		}
	}
	conn.Close()

	// An operator frees the volume: ingestion must resume on its own
	// and the client must finish with every batch acked exactly once.
	cfg.WAL.FS.(fault.DiskSpacer).AddDiskSpace(1 << 20)
	stepWait(t, clk, "client completion after space freed", done.Load)
	if err := <-clientDone; err != nil {
		t.Fatalf("client did not survive the fill: %v", err)
	}
	if got := cl.Acked(); got != uint64(len(w.Batches)) {
		t.Fatalf("client acked %d of %d batches", got, len(w.Batches))
	}
	if n.Follower().Pipeline().ReadOnly() {
		t.Fatal("node still read-only after space freed")
	}
	entries := col.Get(stats.CtrServeReadonlyEntries)
	exits := col.Get(stats.CtrServeReadonlyExits)
	if entries != 1 || exits != 1 {
		t.Fatalf("readonly entries/exits = %d/%d, want exactly one episode", entries, exits)
	}

	// Quiesce, then compare against the uninterrupted run.
	cancel()
	if err := <-ran; !errors.Is(err, context.Canceled) {
		t.Fatalf("node run ended with %v", err)
	}
	n.Close()
	states := n.Follower().Pipeline().Session().States()
	if !statesEqual(states, want) {
		t.Fatal("fill-then-free run diverged from the uninterrupted reference")
	}
	return diskPressureDigest{
		acked:     cl.Acked(),
		height:    n.Follower().Seq(),
		entries:   entries,
		exits:     exits,
		stateHash: hashStates(states),
	}
}

// TestChaosDiskPressureFillThenFree: fill the WAL volume mid-ingest,
// verify the degradation ladder end to end, free the space, converge —
// twice, with identical digests.
func TestChaosDiskPressureFillThenFree(t *testing.T) {
	for trial := 0; trial < 2; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			first := runDiskPressureTrial(t, trial)
			second := runDiskPressureTrial(t, trial)
			if first != second {
				t.Fatalf("trial %d not deterministic: %+v vs %+v", trial, first, second)
			}
		})
	}
}

// startStormNode is startLiveNode with a lease long enough to survive
// heartbeat rounds that crawl through throttled follower writes.
func startStormNode(t *testing.T, fabric *chaosNet, elog *electionLog, w *stream.Workload,
	addr, dir string, peers []string, seed int64) *liveNode {
	t.Helper()
	cfg := nodeConfig(w, dir)
	n, err := NewNode(NodeConfig{
		Addr:           addr,
		Peers:          peers,
		Dial:           fabric.dialerFor(addr),
		Pipeline:       cfg,
		HeartbeatEvery: 10 * time.Millisecond,
		LeaseTimeout:   300 * time.Millisecond,
		AckTimeout:     time.Second,
		Seed:           seed,
		OnEvent:        elog.hook(addr),
	})
	if err != nil {
		t.Fatalf("NewNode(%s): %v", addr, err)
	}
	fabric.register(addr, n)
	ctx, cancel := context.WithCancel(context.Background())
	ln := &liveNode{addr: addr, dir: dir, node: n, cancel: cancel, done: make(chan error, 1)}
	go func() { ln.done <- n.Run(ctx) }()
	return ln
}

type stormDigest struct {
	acked     uint64
	height    uint64
	stateHash uint64
}

// runDeadlineStormTrial runs a client with a 15ms batch deadline
// against a cluster whose follower writes crawl at 50ms: every
// pre-heal submission outlives its budget in flight, so progress only
// happens through the deadline path — drop the connection on expiry,
// reconnect, adopt the Welcome's durable prefix, move on. Exactly-once
// must hold throughout, and healing the throttle must let the run
// finish and converge.
func runDeadlineStormTrial(t *testing.T, trial int) stormDigest {
	t.Helper()
	w := testWorkload(t, 16)
	want := referenceStates(t, w)
	fabric := newChaosNet()
	elog := newElectionLog()

	addrs := []string{"alpha", "beta", "gamma"}
	peersOf := func(self string) []string {
		var ps []string
		for _, a := range addrs {
			if a != self {
				ps = append(ps, a)
			}
		}
		return ps
	}
	// Beta and gamma answer slowly from the start: every write they
	// make — replication acks, and client acks should one of them
	// lead — takes 50ms, while the client's deadline is 15ms.
	for _, a := range addrs[1:] {
		fabric.wrapInbound(a, func(c net.Conn) net.Conn {
			return throttleConn{Conn: c, d: 50 * time.Millisecond}
		})
	}
	var members []*liveNode
	for i, a := range addrs {
		members = append(members, startStormNode(t, fabric, elog, w, a, t.TempDir(), peersOf(a), int64(trial*100+i)))
	}
	defer func() {
		for _, m := range members {
			m.stop()
		}
	}()
	waitFor(t, 10*time.Second, "initial election", func() bool { return currentLeader(members) != nil })

	var attaches, refusals atomic.Int64
	dial := fabric.dialerFor("client")
	cl, err := NewClient(ClientConfig{
		Nodes:         addrs,
		Dial:          dial,
		AckTimeout:    time.Second,
		BatchDeadline: 15 * time.Millisecond,
		MaxAttempts:   50,
		Seed:          int64(trial),
		Backoff:       &serve.Backoff{Base: 2 * time.Millisecond, Max: 40 * time.Millisecond, Multiplier: 2},
		Breaker:       serve.NewBreaker(10, 50*time.Millisecond, nil),
		OnEvent: func(s string) {
			switch {
			case strings.HasPrefix(s, "attached to leader"):
				attaches.Add(1)
			case strings.Contains(s, "refused"):
				refusals.Add(1)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	clientDone := make(chan error, 1)
	go func() { clientDone <- cl.Run(context.Background(), w.Batches) }()

	// Let the storm rage over the first half of the workload, then heal
	// the throttles (new connections run at pipe speed).
	waitFor(t, 20*time.Second, "progress through the storm", func() bool {
		for _, m := range members {
			if m.node.Follower().Seq() >= 8 {
				return true
			}
		}
		return false
	})
	stormAttaches := attaches.Load()
	for _, a := range addrs[1:] {
		fabric.wrapInbound(a, nil)
		fabric.sever(a)
	}

	if err := <-clientDone; err != nil {
		t.Fatalf("client did not survive the deadline storm: %v", err)
	}
	if got := cl.Acked(); got != uint64(len(w.Batches)) {
		t.Fatalf("client acked %d of %d batches", got, len(w.Batches))
	}
	// Every pre-heal submission expired in flight, so the client can
	// only have progressed by dropping and re-attaching: more than the
	// single initial attach proves the deadline path actually ran (no
	// member was killed and no election forced a reconnect otherwise).
	if stormAttaches < 3 {
		t.Fatalf("client attached %d times during the storm, want >= 3 (deadline path never exercised)", stormAttaches)
	}

	height := uint64(len(w.Batches))
	waitFor(t, 15*time.Second, "full cluster convergence", func() bool {
		for _, m := range members {
			if m.node.Follower().Seq() != height {
				return false
			}
		}
		return currentLeader(members) != nil
	})
	elog.checkOneLeaderPerTerm(t)

	// Quiesce before reading states (stop joins in-flight sessions).
	for _, m := range members {
		m.stop()
	}
	for _, m := range members {
		if !statesEqual(m.node.Follower().Pipeline().Session().States(), want) {
			t.Fatalf("%s diverged from the uninterrupted run", m.addr)
		}
	}
	return stormDigest{
		acked:     cl.Acked(),
		height:    height,
		stateHash: hashStates(members[0].node.Follower().Pipeline().Session().States()),
	}
}

// TestChaosDeadlineStorm: tight client deadlines against a slow
// quorum, healed mid-run — exactly-once completion, one leader per
// term, and a digest that reproduces run to run.
func TestChaosDeadlineStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second storm trial")
	}
	first := runDeadlineStormTrial(t, 1)
	second := runDeadlineStormTrial(t, 1)
	if first != second {
		t.Fatalf("storm trial not deterministic: %+v vs %+v", first, second)
	}
}

// TestNodeClientDeadlineExpiresInFlight pins the client half of the
// deadline contract without a cluster: a server that goes quiet after
// the handshake forces the in-flight expiry, which must surface as the
// typed submit-stage deadline error — not a generic transport failure.
func TestNodeClientDeadlineExpiresInFlight(t *testing.T) {
	srv, cli := net.Pipe()
	go func() {
		if fr, err := ReadFrame(srv); err != nil || fr.Type != FrameClientHello {
			return
		}
		WriteFrame(srv, Frame{Type: FrameWelcome, Term: 1, Seq: 0})
		ReadFrame(srv) // swallow the submit and never answer
	}()
	cl, err := NewClient(ClientConfig{
		Nodes:         []string{"mute"},
		Dial:          func(string) (net.Conn, error) { return cli, nil },
		AckTimeout:    time.Second,
		BatchDeadline: 20 * time.Millisecond,
		MaxAttempts:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := testWorkload(t, 1)
	err = cl.Run(context.Background(), w.Batches)
	if !errors.Is(err, serve.ErrDeadline) {
		t.Fatalf("in-flight expiry surfaced as %v, want ErrDeadline", err)
	}
	var de *serve.DeadlineError
	if !errors.As(err, &de) || de.Stage != "submit" {
		t.Fatalf("deadline stage in %v, want submit", err)
	}
	if !errors.Is(err, serve.ErrSourceGivenUp) {
		t.Fatalf("exhausted budget must wrap ErrSourceGivenUp: %v", err)
	}
}
