package replica

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"github.com/tdgraph/tdgraph/internal/serve"
	"github.com/tdgraph/tdgraph/internal/stats"
	"github.com/tdgraph/tdgraph/internal/wal"
)

// TestDivergedFollowerRejected is the regression for silent log
// divergence: a replica holding an unacknowledged tail the promoted
// log never had (the classic deposed-primary-restarted-as-follower
// shape) must be refused at the handshake with ErrFollowerDiverged —
// on both detection paths: its seq is ahead of the new primary's log
// end, and, once the new primary has written past that seq, its tail
// stamp names an origin term the primary's ledger contradicts. It must
// never be attached or counted toward quorum, and must itself learn it
// was refused. A reseeded replica in its place attaches fine.
func TestDivergedFollowerRejected(t *testing.T) {
	w := testWorkload(t, 8)

	pdir := t.TempDir()
	pcfg := nodeConfig(w, pdir)
	if _, err := ClaimTerm(wal.Options{Dir: pdir}, 1); err != nil {
		t.Fatal(err)
	}
	prim := NewPrimary(PrimaryConfig{Term: 1, ClusterSize: 3, WAL: pcfg.WAL})

	mk := func(dir string) *Follower {
		cfg := nodeConfig(w, dir)
		cfg.CheckpointEvery = -1
		fl, err := NewFollower(FollowerConfig{Pipeline: cfg})
		if err != nil {
			t.Fatal(err)
		}
		return fl
	}
	fa := mk(t.TempDir())
	fb := mk(t.TempDir())
	na := attach(t, prim, fa, nil)
	// B attaches by hand so the test holds its primary-side conn and
	// can sever it mid-stream.
	psideB, fsideB := net.Pipe()
	nbDone := make(chan error, 1)
	go func() { nbDone <- fb.Serve(fsideB) }()
	if err := prim.AddFollower(psideB); err != nil {
		t.Fatal(err)
	}

	pcfg.Replicator = prim
	pipe, err := serve.NewPipeline(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	// Two batches reach everyone; then B's transport dies and batch 3
	// lands only on the primary and A (still quorum, 2 of 3). A now
	// holds a seq-3 record B never saw.
	for _, b := range w.Batches[:2] {
		if err := pipe.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	psideB.Close()
	<-nbDone
	if err := pipe.Ingest(w.Batches[2]); err != nil {
		t.Fatal(err)
	}
	pipe.Close()
	prim.Close()
	<-na.done

	// The primary's machine is lost, and failover promotes B — NOT the
	// most-advanced follower, which is exactly the mistake (or the
	// deposed-primary WAL-replay resurrection it models) divergence
	// detection must catch: A's seq-3 record is w.Batches[2], but the
	// promoted log's seq 3 will be w.Batches[3].
	newTerm, err := fb.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if newTerm != 2 {
		t.Fatalf("promoted to term %d, want 2", newTerm)
	}

	col := stats.NewCollector()
	np := NewPrimary(PrimaryConfig{
		Term: newTerm, ClusterSize: 3, Quorum: 1,
		WAL:       fb.Pipeline().WALOptions(),
		Collector: col,
	})

	// Path 1 — ahead of the promoted log end (B is at seq 2, A at 3).
	psideA, fsideA := net.Pipe()
	sessA := make(chan error, 1)
	go func() { sessA <- fa.Serve(fsideA) }()
	err = np.AddFollower(psideA)
	if !errors.Is(err, ErrFollowerDiverged) {
		t.Fatalf("ahead rejoin: want ErrFollowerDiverged, got %v", err)
	}
	if serr := <-sessA; !errors.Is(serr, ErrFollowerDiverged) {
		t.Fatalf("ahead rejoin follower session: want ErrFollowerDiverged, got %v", serr)
	}
	psideA.Close()
	if np.Followers() != 0 {
		t.Fatalf("diverged follower was attached (%d followers)", np.Followers())
	}

	// The promoted primary serves on alone: its seq 3 and 4 are new
	// records created under term 2.
	for _, b := range w.Batches[3:5] {
		if err := fb.Pipeline().Ingest(b); err != nil {
			t.Fatal(err)
		}
	}

	// Path 2 — the next generation (probe max + 1 = term 3) has written
	// past A's seq, so the tail stamp is what convicts A now: its seq-3
	// record originates at term 1, the promoted ledger says seq 3 is
	// term 2's. First check the probe itself: state, and no adoption.
	psideP, fsideP := net.Pipe()
	probeDone := make(chan error, 1)
	go func() { probeDone <- fa.Serve(fsideP) }()
	probedTerm, probedSeq, err := ProbeState(psideP, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if probedTerm != 2 || probedSeq != 3 {
		t.Fatalf("probe = term %d seq %d, want term 2 seq 3", probedTerm, probedSeq)
	}
	// End the probe session before touching fa again: Serve holds the
	// follower's lock until its conn dies.
	psideP.Close()
	<-probeDone
	if fa.Term() != 2 {
		t.Fatalf("probe adopted a term: follower at %d, want 2", fa.Term())
	}

	if _, err := ClaimTerm(fb.Pipeline().WALOptions(), probedTerm+1); err != nil {
		t.Fatal(err)
	}
	np2 := NewPrimary(PrimaryConfig{
		Term: probedTerm + 1, ClusterSize: 3, Quorum: 1,
		WAL:       fb.Pipeline().WALOptions(),
		Collector: col,
	})
	psideA2, fsideA2 := net.Pipe()
	sessA2 := make(chan error, 1)
	go func() { sessA2 <- fa.Serve(fsideA2) }()
	err = np2.AddFollower(psideA2)
	if !errors.Is(err, ErrFollowerDiverged) {
		t.Fatalf("stamp-conflict rejoin: want ErrFollowerDiverged, got %v", err)
	}
	if serr := <-sessA2; !errors.Is(serr, ErrFollowerDiverged) {
		t.Fatalf("stamp-conflict follower session: want ErrFollowerDiverged, got %v", serr)
	}
	psideA2.Close()
	if got := col.Get(stats.CtrReplDivergedRejects); got != 2 {
		t.Fatalf("diverged-reject counter = %d, want 2", got)
	}

	// A reseeded (empty) replica in A's place attaches fine and catches
	// up across all three origin terms of the promoted history.
	fc := mk(t.TempDir())
	nc := attach(t, np2, fc, nil)
	fb.Pipeline().SetReplicator(np2)
	if err := fb.Pipeline().Ingest(w.Batches[5]); err != nil {
		t.Fatal(err)
	}
	np2.Close()
	<-nc.done
	if fc.Seq() != fb.Seq() {
		t.Fatalf("reseeded follower at seq %d, promoted log at %d", fc.Seq(), fb.Seq())
	}
	if !statesEqual(fc.Pipeline().Session().States(), fb.Pipeline().Session().States()) {
		t.Fatal("reseeded follower states diverged from the promoted log")
	}

	fa.Pipeline().Close()
	fb.Pipeline().Close()
	fc.Pipeline().Close()
	np.Close()
}

// TestStalledFollowerDropped: a follower that stays connected but
// stops draining its socket must not block Replicate past the ack
// timeout — the primary's writes carry the same deadline its reads do,
// and a timed-out write drops the follower like a missed ack would.
func TestStalledFollowerDropped(t *testing.T) {
	w := testWorkload(t, 2)
	pcfg := nodeConfig(w, t.TempDir())

	pside, fside := net.Pipe()
	// Handshake by hand, then never touch the conn again: net.Pipe is
	// unbuffered, so every later write into it blocks until read —
	// forever, without a write deadline.
	go func() {
		if f, err := ReadFrame(fside); err != nil || f.Type != FrameHello {
			return
		}
		WriteFrame(fside, Frame{Type: FrameWelcome, Term: 1, Seq: 0})
	}()

	prim := NewPrimary(PrimaryConfig{
		Term: 1, ClusterSize: 1, Quorum: 1,
		WAL:        pcfg.WAL,
		AckTimeout: 150 * time.Millisecond,
	})
	if err := prim.AddFollower(pside); err != nil {
		t.Fatalf("AddFollower: %v", err)
	}

	start := time.Now()
	if err := prim.Replicate(1, w.Batches[0]); err != nil {
		t.Fatalf("Replicate with quorum 1: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Replicate blocked %s on a stalled follower", elapsed)
	}
	if prim.Followers() != 0 {
		t.Fatalf("stalled follower still attached (%d)", prim.Followers())
	}
	prim.Close()
}

// errFS fails every Open with a non-not-exist error, simulating a
// transiently erroring disk.
type errFS struct {
	wal.OSFS
	err error
}

func (e errFS) Open(string) (io.ReadCloser, error) { return nil, e.err }

// TestTermStateDurability pins the term-state file contract: ledger
// round trip, At semantics, Stamp superseding a crashed claim, and —
// the regression — that a disk failing with real I/O errors surfaces
// them instead of forging the zero term (which would un-fence a
// deposed primary), while genuinely absent state still loads as zero.
func TestTermStateDurability(t *testing.T) {
	dir := t.TempDir()
	fs := wal.OSFS{}

	want := TermState{Term: 7, Ledger: []TermBase{{Term: 2, Base: 1}, {Term: 7, Base: 40}}}
	if err := SaveTermState(fs, dir, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTermState(fs, dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Term != 7 || len(got.Ledger) != 2 || got.Ledger[1] != (TermBase{Term: 7, Base: 40}) {
		t.Fatalf("round trip: %+v", got)
	}
	for seq, wantTerm := range map[uint64]uint64{0: 0, 1: 2, 39: 2, 40: 7, 1000: 7} {
		if at := got.At(seq); at != wantTerm {
			t.Errorf("At(%d) = %d, want %d", seq, at, wantTerm)
		}
	}

	// Missing slots are a legitimate zero state.
	if s, err := LoadTermState(fs, t.TempDir()); err != nil || s.Term != 0 {
		t.Fatalf("empty dir: state %+v, err %v", s, err)
	}

	// A disk that errors on open must not report term 0 as truth.
	boom := errors.New("transient disk error")
	if _, err := LoadTermState(errFS{err: boom}, dir); !errors.Is(err, boom) {
		t.Fatalf("erroring disk: want the I/O error surfaced, got %v", err)
	}

	// Stamp supersedes a crashed claim at the same base instead of
	// stacking entries: term 2 claimed base 5 but never wrote a record,
	// so term 3's claim at the same base replaces it.
	s := TermState{Term: 3, Ledger: []TermBase{{Term: 1, Base: 1}}}
	s.Stamp(2, 5)
	s.Stamp(3, 5)
	if len(s.Ledger) != 2 || s.Ledger[1] != (TermBase{Term: 3, Base: 5}) {
		t.Fatalf("Stamp supersede: %+v", s.Ledger)
	}

	// ClaimTerm refuses to move backwards or sideways.
	if _, err := ClaimTerm(wal.Options{Dir: dir}, 7); !errors.Is(err, ErrStaleTerm) {
		t.Fatalf("re-claiming an adopted term: want ErrStaleTerm, got %v", err)
	}
	if _, err := ClaimTerm(wal.Options{Dir: dir}, 8); err != nil {
		t.Fatalf("claiming term 8: %v", err)
	}
}
