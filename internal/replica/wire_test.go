package replica

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	for _, f := range []Frame{
		{Type: FrameHello, Term: 3},
		{Type: FrameWelcome, Term: 3, Seq: 17, Orig: 2},
		{Type: FrameRecord, Term: 3, Seq: 18, Orig: 3, Payload: []byte{1, 2, 3, 4, 5}},
		{Type: FrameAck, Term: 3, Seq: 18},
		{Type: FrameReject, Term: 9, Seq: 12},
		{Type: FrameRecord, Term: 1, Seq: 1, Payload: nil},
		{Type: FrameProbe},
		{Type: FrameState, Term: 4, Seq: 33, Orig: 4},
	} {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatalf("WriteFrame(%+v): %v", f, err)
		}
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame(%+v): %v", f, err)
		}
		if got.Type != f.Type || got.Term != f.Term || got.Seq != f.Seq || got.Orig != f.Orig || !bytes.Equal(got.Payload, f.Payload) {
			t.Fatalf("round trip changed the frame: sent %+v, got %+v", f, got)
		}
	}
}

func TestFrameDetectsDamage(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{Type: FrameRecord, Term: 2, Seq: 5, Payload: []byte("payload")}); err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()

	for name, mutate := range map[string]func([]byte) []byte{
		"flipped payload bit": func(b []byte) []byte { b[frameHdrSize+2] ^= 0x10; return b },
		"flipped seq bit":     func(b []byte) []byte { b[14] ^= 0x01; return b },
		"wrong magic":         func(b []byte) []byte { b[0] ^= 0xFF; return b },
		"bad type":            func(b []byte) []byte { b[4] = 99; return b },
	} {
		mutated := mutate(append([]byte(nil), wire...))
		_, err := ReadFrame(bytes.NewReader(mutated))
		var fe *FrameError
		if !errors.As(err, &fe) || !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: want *FrameError wrapping ErrBadFrame, got %v", name, err)
		}
	}

	// Truncation mid-frame is a transport error, not ErrBadFrame.
	_, err := ReadFrame(bytes.NewReader(wire[:len(wire)-3]))
	var fe *FrameError
	if !errors.As(err, &fe) || !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated frame: want *FrameError wrapping ErrUnexpectedEOF, got %v", err)
	}

	// A cleanly closed stream between frames is bare io.EOF.
	if _, err := ReadFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Errorf("empty stream: want io.EOF, got %v", err)
	}
}

// FuzzReplicaFrame: arbitrary bytes through ReadFrame never panic and
// fail only with typed errors; decodable frames re-encode to the same
// bytes consumed.
func FuzzReplicaFrame(f *testing.F) {
	f.Add([]byte{})
	for _, fr := range []Frame{
		{Type: FrameHello, Term: 1},
		{Type: FrameRecord, Term: 2, Seq: 3, Payload: []byte{0, 1, 2}},
		{Type: FrameAck, Term: 2, Seq: 3},
	} {
		var buf bytes.Buffer
		WriteFrame(&buf, fr)
		f.Add(buf.Bytes())
		f.Add(buf.Bytes()[:buf.Len()-1])
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			if err == io.EOF {
				return
			}
			var fe *FrameError
			if !errors.As(err, &fe) {
				t.Fatalf("untyped frame error: %v", err)
			}
			return
		}
		// A frame that decoded must re-encode byte-identically to its
		// wire prefix (CRC pins every field).
		var buf bytes.Buffer
		if err := WriteFrame(&buf, fr); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), data[:buf.Len()]) {
			t.Fatalf("decode/encode not idempotent:\n in %x\nout %x", data[:buf.Len()], buf.Bytes())
		}
	})
}
