package tdgraph_test

import (
	"bytes"
	"path/filepath"
	"testing"

	tdgraph "github.com/tdgraph/tdgraph"
	"github.com/tdgraph/tdgraph/internal/graph"
)

// TestSessionSaveLoad round-trips a checkpoint and continues streaming on
// the restored session.
func TestSessionSaveLoad(t *testing.T) {
	edges, nv := sessionEdges()
	s, err := tdgraph.NewSession(tdgraph.NewSSSP(0), edges, nv, tdgraph.SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ApplyBatch([]tdgraph.Update{
		{Edge: tdgraph.Edge{Src: 0, Dst: 2999, Weight: 1}},
	}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := tdgraph.LoadSession(tdgraph.NewSSSP(0), &buf, tdgraph.SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if restored.NumVertices() != s.NumVertices() || restored.NumEdges() != s.NumEdges() {
		t.Fatalf("restored shape %d/%d vs %d/%d",
			restored.NumVertices(), restored.NumEdges(), s.NumVertices(), s.NumEdges())
	}
	for v := 0; v < nv; v++ {
		if restored.State(tdgraph.VertexID(v)) != s.State(tdgraph.VertexID(v)) {
			t.Fatalf("state of %d differs after restore", v)
		}
	}
	// The restored session must keep streaming correctly.
	if _, err := restored.ApplyBatch([]tdgraph.Update{
		{Edge: tdgraph.Edge{Src: 2999, Dst: 7, Weight: 1}},
	}); err != nil {
		t.Fatal(err)
	}
	got := restored.State(7)
	restored.Recompute()
	if restored.State(7) != got {
		t.Fatalf("post-restore incremental state %v != recompute %v", got, restored.State(7))
	}
}

func TestSessionSaveLoadFile(t *testing.T) {
	edges, nv := sessionEdges()
	s, err := tdgraph.NewSession(tdgraph.NewCC(), edges, nv, tdgraph.SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ckpt.tds")
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	restored, err := tdgraph.LoadSessionFile(tdgraph.NewCC(), path, tdgraph.SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if restored.NumEdges() != s.NumEdges() {
		t.Fatal("file restore changed edge count")
	}
}

func TestLoadSessionRejectsGarbage(t *testing.T) {
	if _, err := tdgraph.LoadSession(tdgraph.NewCC(), bytes.NewReader([]byte{1, 2, 3}), tdgraph.SessionOptions{}); err == nil {
		t.Fatal("garbage checkpoint accepted")
	}
	if _, err := tdgraph.LoadSession(nil, bytes.NewReader(nil), tdgraph.SessionOptions{}); err == nil {
		t.Fatal("nil algorithm accepted")
	}
}

// TestApplySnapshot drives a session from periodic full snapshots.
func TestApplySnapshot(t *testing.T) {
	edges, nv := sessionEdges()
	s, err := tdgraph.NewSession(tdgraph.NewSSSP(0), edges, nv, tdgraph.SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Build "the next feed snapshot": same graph with some churn.
	b := graph.NewBuilderFromEdges(nv, edges)
	b.Apply([]tdgraph.Update{
		{Edge: tdgraph.Edge{Src: 5, Dst: 6, Weight: 1}},
		{Edge: tdgraph.Edge{Src: edges[0].Src, Dst: edges[0].Dst}, Delete: true},
	})
	next := b.Snapshot()
	res, err := s.ApplySnapshot(next)
	if err != nil {
		t.Fatal(err)
	}
	if res.Added == 0 && res.Deleted == 0 {
		t.Fatalf("snapshot diff applied nothing: %+v", res)
	}
	if s.NumEdges() != next.NumEdges() {
		t.Fatalf("session has %d edges, feed snapshot %d", s.NumEdges(), next.NumEdges())
	}
	got := append([]float64(nil), s.States()...)
	s.Recompute()
	for v := range got {
		if got[v] != s.State(tdgraph.VertexID(v)) {
			t.Fatalf("snapshot-driven state of %d diverged", v)
		}
	}
}
