package tdgraph_test

import (
	"math"
	"testing"

	tdgraph "github.com/tdgraph/tdgraph"
	"github.com/tdgraph/tdgraph/internal/graph/gen"
)

func sessionEdges() ([]tdgraph.Edge, int) {
	return gen.RMAT(gen.RMATConfig{
		NumVertices: 3000, NumEdges: 18000,
		A: 0.57, B: 0.19, C: 0.19, Seed: 5, MaxWeight: 8,
	}), 3000
}

// TestSessionLifecycle streams several batches through every engine kind
// and cross-checks against a from-scratch recompute.
func TestSessionLifecycle(t *testing.T) {
	kinds := map[string]tdgraph.SessionOptions{
		"topology-driven": {Engine: tdgraph.EngineTopologyDriven},
		"baseline":        {Engine: tdgraph.EngineBaseline},
		"native":          {Engine: tdgraph.EngineNativeParallel},
	}
	for name, opt := range kinds {
		t.Run(name, func(t *testing.T) {
			edges, nv := sessionEdges()
			s, err := tdgraph.NewSession(tdgraph.NewSSSP(0), edges, nv, opt)
			if err != nil {
				t.Fatal(err)
			}
			for batch := 0; batch < 3; batch++ {
				var updates []tdgraph.Update
				for i := 0; i < 150; i++ {
					src := tdgraph.VertexID((batch*7919 + i*13) % nv)
					dst := tdgraph.VertexID((batch*104729 + i*31) % nv)
					if src == dst {
						continue
					}
					updates = append(updates, tdgraph.Update{
						Edge: tdgraph.Edge{Src: src, Dst: dst, Weight: float32(1 + i%8)},
					})
				}
				if _, err := s.ApplyBatch(updates); err != nil {
					t.Fatal(err)
				}
				got := append([]float64(nil), s.States()...)
				s.Recompute()
				for v := range got {
					w := s.State(tdgraph.VertexID(v))
					if got[v] != w && !(math.IsInf(got[v], 1) && math.IsInf(w, 1)) {
						t.Fatalf("batch %d: incremental state of %d = %v, recompute = %v", batch, v, got[v], w)
					}
				}
			}
		})
	}
}

// TestSessionSimulated attaches the architectural simulator and checks
// that cycle counts and counters come back.
func TestSessionSimulated(t *testing.T) {
	edges, nv := sessionEdges()
	s, err := tdgraph.NewSession(tdgraph.NewSSSP(0), edges, nv,
		tdgraph.SessionOptions{Simulate: true, Cores: 8})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.ApplyBatch([]tdgraph.Update{
		{Edge: tdgraph.Edge{Src: 0, Dst: 2999, Weight: 1}},
		{Edge: tdgraph.Edge{Src: 2999, Dst: 1500, Weight: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Added == 0 {
		t.Fatal("batch added nothing")
	}
	if s.LastCycles() <= 0 {
		t.Fatal("no simulated cycles recorded")
	}
	if s.Metrics() == nil {
		t.Fatal("no metrics recorded")
	}
}

// TestSessionGrowth: batches referencing unseen vertex IDs must grow the
// session's graph.
func TestSessionGrowth(t *testing.T) {
	s, err := tdgraph.NewSession(tdgraph.NewCC(), []tdgraph.Edge{{Src: 0, Dst: 1, Weight: 1}}, 2,
		tdgraph.SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ApplyBatch([]tdgraph.Update{{Edge: tdgraph.Edge{Src: 1, Dst: 9, Weight: 1}}}); err != nil {
		t.Fatal(err)
	}
	if s.NumVertices() != 10 {
		t.Fatalf("vertices = %d, want 10", s.NumVertices())
	}
	if s.State(9) != 0 {
		t.Fatalf("label of grown vertex = %v, want 0", s.State(9))
	}
}

// TestSessionRejects misconfigurations.
func TestSessionRejects(t *testing.T) {
	if _, err := tdgraph.NewSession(nil, nil, 1, tdgraph.SessionOptions{}); err == nil {
		t.Fatal("nil algorithm accepted")
	}
	if _, err := tdgraph.NewSession(tdgraph.NewSSSP(0), nil, 10,
		tdgraph.SessionOptions{Engine: tdgraph.EngineNativeParallel, Simulate: true}); err == nil {
		t.Fatal("native engine accepted simulation")
	}
}

// TestSessionNativePageRank streams accumulative batches through the
// native parallel engine and checks against a recompute (loose tolerance:
// delta truncation compounds across batches).
func TestSessionNativePageRank(t *testing.T) {
	edges, nv := sessionEdges()
	s, err := tdgraph.NewSession(tdgraph.NewPageRank(), edges, nv,
		tdgraph.SessionOptions{Engine: tdgraph.EngineNativeParallel})
	if err != nil {
		t.Fatal(err)
	}
	for batch := 0; batch < 2; batch++ {
		var updates []tdgraph.Update
		for i := 0; i < 100; i++ {
			src := tdgraph.VertexID((batch*31 + i*17) % nv)
			dst := tdgraph.VertexID((batch*97 + i*41) % nv)
			if src == dst {
				continue
			}
			updates = append(updates, tdgraph.Update{Edge: tdgraph.Edge{Src: src, Dst: dst, Weight: 1}})
		}
		if _, err := s.ApplyBatch(updates); err != nil {
			t.Fatal(err)
		}
	}
	got := append([]float64(nil), s.States()...)
	s.Recompute()
	for v := range got {
		if math.Abs(got[v]-s.State(tdgraph.VertexID(v))) > 1e-3 {
			t.Fatalf("native pagerank state of %d = %v, recompute %v", v, got[v], s.State(tdgraph.VertexID(v)))
		}
	}
}
