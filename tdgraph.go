// Package tdgraph is the public API of the TDGraph streaming-graph
// library: incremental graph algorithms over batched edge updates, the
// topology-driven processing engine of Zhao et al. (ISCA 2022), native
// parallel execution, and the architectural simulator behind the paper's
// evaluation.
//
// The central type is Session: it owns a mutable graph, keeps the
// algorithm's states converged across update batches, and processes each
// batch incrementally:
//
//	s, _ := tdgraph.NewSession(tdgraph.NewSSSP(0), edges, numVertices, tdgraph.SessionOptions{})
//	res, _ := s.ApplyBatch([]tdgraph.Update{{Edge: tdgraph.Edge{Src: 1, Dst: 2, Weight: 3}}})
//	dist := s.State(2)
//
// Lower-level building blocks (generators, the simulator, the benchmark
// harness, the individual engine models) live in the internal packages
// and are exercised through cmd/ and the examples.
package tdgraph

import (
	"fmt"

	"github.com/tdgraph/tdgraph/internal/algo"
	"github.com/tdgraph/tdgraph/internal/core"
	"github.com/tdgraph/tdgraph/internal/engine"
	"github.com/tdgraph/tdgraph/internal/graph"
	"github.com/tdgraph/tdgraph/internal/native"
	"github.com/tdgraph/tdgraph/internal/sim"
	"github.com/tdgraph/tdgraph/internal/stats"
)

// Re-exported graph types.
type (
	// VertexID identifies a vertex.
	VertexID = graph.VertexID
	// Edge is a weighted directed edge.
	Edge = graph.Edge
	// Update is one streaming update: an edge addition or deletion.
	Update = graph.Update
	// ApplyResult describes what a batch changed.
	ApplyResult = graph.ApplyResult
	// Snapshot is an immutable CSR/CSC graph snapshot.
	Snapshot = graph.Snapshot
	// Algorithm is the algorithm interface (see NewSSSP etc.).
	Algorithm = algo.Algorithm
)

// Algorithm constructors.
var (
	// NewSSSP returns single-source shortest paths from a root.
	NewSSSP = algo.NewSSSP
	// NewBFS returns hop counting from a root.
	NewBFS = algo.NewBFS
	// NewSSWP returns single-source widest path from a root.
	NewSSWP = algo.NewSSWP
	// NewCC returns connected-component labelling (min label over
	// ancestors; symmetrise the edge list for weakly-connected
	// components).
	NewCC = algo.NewCC
	// NewPageRank returns incremental PageRank.
	NewPageRank = algo.NewPageRank
	// NewAdsorption returns the Adsorption label-propagation algorithm.
	NewAdsorption = algo.NewAdsorption
	// LoadSNAPFile parses a SNAP-format edge list from disk.
	LoadSNAPFile = graph.LoadSNAPFile
)

// EngineKind selects how a Session processes batches.
type EngineKind int

const (
	// EngineTopologyDriven is the paper's contribution: topology-driven
	// incremental processing (TDGraph). Functional execution — no
	// architectural simulation — using the same algorithm as the
	// simulated TDGraph-H.
	EngineTopologyDriven EngineKind = iota
	// EngineBaseline is the frontier-synchronous incremental engine
	// (the Ligra-o discipline).
	EngineBaseline
	// EngineNativeParallel runs the real goroutine-parallel engines
	// (lock-free CAS states) — the fastest wall-clock option. Monotonic
	// algorithms use the topology-driven engine, accumulative ones the
	// parallel delta engine.
	EngineNativeParallel
)

// SessionOptions configures a Session.
type SessionOptions struct {
	// Engine selects the processing discipline (default
	// EngineTopologyDriven).
	Engine EngineKind
	// Cores is the logical partition width for the functional engines
	// and the worker count for the native engine (default: 8 for
	// functional, GOMAXPROCS for native).
	Cores int
	// Simulate attaches the scaled Table 1 machine so per-batch
	// Metrics include cycle counts and memory-system counters.
	// (Simulation is orders of magnitude slower than functional mode.)
	Simulate bool
}

// Session maintains a streaming graph and its converged algorithm states
// across batches.
type Session struct {
	opt   SessionOptions
	a     algo.Algorithm
	b     *graph.Builder
	snap  *graph.Snapshot
	state []float64

	lastMetrics *stats.Collector
	lastCycles  float64
}

// NewSession builds the initial graph from edges (nil for an empty graph
// over numVertices vertices) and converges the algorithm on it.
func NewSession(a Algorithm, edges []Edge, numVertices int, opt SessionOptions) (*Session, error) {
	if a == nil {
		return nil, fmt.Errorf("tdgraph: nil algorithm")
	}
	if opt.Cores <= 0 {
		opt.Cores = 8
	}
	if opt.Engine == EngineNativeParallel && opt.Simulate {
		return nil, fmt.Errorf("tdgraph: the native parallel engine cannot be simulated")
	}
	b := graph.NewBuilderFromEdges(numVertices, edges)
	snap := b.Snapshot()
	s := &Session{opt: opt, a: a, b: b, snap: snap}
	s.state = algo.Reference(a, snap)
	return s, nil
}

// NumVertices returns the current vertex count (batches referencing new
// vertex IDs grow it).
func (s *Session) NumVertices() int { return s.b.NumVertices() }

// NumEdges returns the current edge count.
func (s *Session) NumEdges() int { return s.b.NumEdges() }

// State returns v's converged state (e.g. its distance, label, or rank).
func (s *Session) State(v VertexID) float64 { return s.state[v] }

// States returns the full converged state vector. The slice aliases the
// session and is invalidated by the next ApplyBatch.
func (s *Session) States() []float64 { return s.state }

// Graph returns the current immutable snapshot.
func (s *Session) Graph() *Snapshot { return s.snap }

// Metrics returns the metric collector of the last ApplyBatch (nil before
// the first batch). Simulated sessions additionally expose cycle counts
// via LastCycles.
func (s *Session) Metrics() *stats.Collector { return s.lastMetrics }

// LastCycles returns the simulated cycle count of the last batch (zero in
// functional mode).
func (s *Session) LastCycles() float64 { return s.lastCycles }

// ApplyBatch applies the updates to the graph and incrementally repairs
// the algorithm states. It returns what the batch changed.
func (s *Session) ApplyBatch(batch []Update) (ApplyResult, error) {
	oldG := s.snap
	res := s.b.Apply(batch)
	newG := s.b.Snapshot()

	if s.opt.Engine == EngineNativeParallel {
		cfg := native.Config{Workers: s.opt.Cores}
		switch alg := s.a.(type) {
		case algo.MonotonicAlgo:
			s.state = native.TopologyDriven(alg, oldG, newG, s.state, res, cfg)
		case algo.AccumulativeAlgo:
			s.state = native.Accumulative(alg, oldG, newG, s.state, res, cfg)
		}
		s.snap = newG
		return res, nil
	}

	col := stats.NewCollector()
	var m *sim.Machine
	ropt := engine.Options{Cores: s.opt.Cores, Collector: col}
	if s.opt.Simulate {
		cfg := sim.ScaledConfig()
		if s.opt.Cores <= cfg.Cores {
			cfg.Cores = s.opt.Cores
		}
		m = sim.New(cfg)
		ropt.Machine = m
		ropt.Layout = engine.LayoutOptions{TDGraph: s.opt.Engine == EngineTopologyDriven, Alpha: 0.005}
	}
	rt := engine.NewRuntime(s.a, oldG, newG, s.state, ropt)
	var sys engine.System
	switch s.opt.Engine {
	case EngineBaseline:
		sys = engine.NewBaseline(engine.LigraO(), rt)
	default:
		sys = core.New(core.DefaultConfig(), rt)
	}
	sys.Process(res)
	s.state = rt.S
	s.snap = newG
	s.lastMetrics = col
	if m != nil {
		s.lastCycles = m.Time()
	}
	return res, nil
}

// Recompute converges the algorithm from scratch on the current snapshot
// and replaces the session states — useful to bound accumulated
// floating-point drift on very long accumulative streams, and in tests
// as the oracle.
func (s *Session) Recompute() {
	s.state = algo.Reference(s.a, s.snap)
}
