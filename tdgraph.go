// Package tdgraph is the public API of the TDGraph streaming-graph
// library: incremental graph algorithms over batched edge updates, the
// topology-driven processing engine of Zhao et al. (ISCA 2022), native
// parallel execution, and the architectural simulator behind the paper's
// evaluation.
//
// The central type is Session: it owns a mutable graph, keeps the
// algorithm's states converged across update batches, and processes each
// batch incrementally:
//
//	s, _ := tdgraph.NewSession(tdgraph.NewSSSP(0), edges, numVertices, tdgraph.SessionOptions{})
//	res, _ := s.ApplyBatch([]tdgraph.Update{{Edge: tdgraph.Edge{Src: 1, Dst: 2, Weight: 3}}})
//	dist := s.State(2)
//
// Lower-level building blocks (generators, the simulator, the benchmark
// harness, the individual engine models) live in the internal packages
// and are exercised through cmd/ and the examples.
package tdgraph

import (
	"fmt"
	"runtime/debug"

	"github.com/tdgraph/tdgraph/internal/algo"
	"github.com/tdgraph/tdgraph/internal/engine"
	"github.com/tdgraph/tdgraph/internal/graph"
	"github.com/tdgraph/tdgraph/internal/stats"
	"github.com/tdgraph/tdgraph/internal/stream"
)

// Re-exported graph types.
type (
	// VertexID identifies a vertex.
	VertexID = graph.VertexID
	// Edge is a weighted directed edge.
	Edge = graph.Edge
	// Update is one streaming update: an edge addition or deletion.
	Update = graph.Update
	// ApplyResult describes what a batch changed.
	ApplyResult = graph.ApplyResult
	// Snapshot is an immutable CSR/CSC graph snapshot.
	Snapshot = graph.Snapshot
	// Algorithm is the algorithm interface (see NewSSSP etc.).
	Algorithm = algo.Algorithm
)

// Algorithm constructors.
var (
	// NewSSSP returns single-source shortest paths from a root.
	NewSSSP = algo.NewSSSP
	// NewBFS returns hop counting from a root.
	NewBFS = algo.NewBFS
	// NewSSWP returns single-source widest path from a root.
	NewSSWP = algo.NewSSWP
	// NewCC returns connected-component labelling (min label over
	// ancestors; symmetrise the edge list for weakly-connected
	// components).
	NewCC = algo.NewCC
	// NewPageRank returns incremental PageRank.
	NewPageRank = algo.NewPageRank
	// NewAdsorption returns the Adsorption label-propagation algorithm.
	NewAdsorption = algo.NewAdsorption
	// LoadSNAPFile parses a SNAP-format edge list from disk.
	LoadSNAPFile = graph.LoadSNAPFile
)

// EngineKind selects how a Session processes batches.
type EngineKind int

const (
	// EngineTopologyDriven is the paper's contribution: topology-driven
	// incremental processing (TDGraph). Functional execution — no
	// architectural simulation — using the same algorithm as the
	// simulated TDGraph-H.
	EngineTopologyDriven EngineKind = iota
	// EngineBaseline is the frontier-synchronous incremental engine
	// (the Ligra-o discipline).
	EngineBaseline
	// EngineNativeParallel runs the real goroutine-parallel engines —
	// the fastest wall-clock option and the production serving path.
	// The session holds a mutable hybrid graph store (O(degree)
	// updates, no per-batch CSR rebuild) and, for monotonic algorithms,
	// a stateful incremental engine with persistent worklists, work
	// stealing, and software-TDTU propagation counters. Accumulative
	// algorithms use the parallel delta engine over sealed views.
	EngineNativeParallel
)

// ValidationPolicy selects how a Session screens incoming updates; see
// the internal/stream validator for the exact semantics of each rung.
type ValidationPolicy = stream.Policy

// Validation policies, from most permissive to most defensive.
const (
	// ValidationNone disables update screening (the default): callers
	// feeding trusted, well-formed streams pay nothing.
	ValidationNone = stream.PolicyNone
	// ValidationReject refuses any batch containing a malformed update
	// with a typed *stream.ValidationError.
	ValidationReject = stream.PolicyReject
	// ValidationClamp repairs NaN/Inf weights and drops out-of-range or
	// self-loop updates, counting each action.
	ValidationClamp = stream.PolicyClamp
	// ValidationQuarantine is ValidationClamp plus endpoint quarantine:
	// later updates touching a vertex a malformed update named are
	// diverted too.
	ValidationQuarantine = stream.PolicyQuarantine
)

// SessionOptions configures a Session.
type SessionOptions struct {
	// Engine selects the processing discipline (default
	// EngineTopologyDriven).
	Engine EngineKind
	// Cores is the logical partition width for the functional engines
	// and the worker count for the native engine (default: 8 for
	// functional, GOMAXPROCS for native).
	Cores int
	// Simulate attaches the scaled Table 1 machine so per-batch
	// Metrics include cycle counts and memory-system counters.
	// (Simulation is orders of magnitude slower than functional mode.)
	Simulate bool
	// Validation screens every batch (and the initial edge list) before
	// it reaches the graph builder. Default ValidationNone.
	Validation ValidationPolicy
	// MaxVertices caps valid vertex IDs when Validation is armed; 0
	// means "the vertex count the session was created with". Without a
	// cap a single wild update ID could grow the vertex set unboundedly.
	MaxVertices int
	// SelfCheck audits the local-fixpoint invariant after every batch
	// and transparently falls back to a full recompute on divergence
	// (recorded in RobustStats). One extra O(V+E) pass per batch.
	SelfCheck bool
}

// Session maintains a streaming graph and its converged algorithm states
// across batches. The graph representation and repair discipline live
// behind an engine backend selected by SessionOptions.Engine; the
// validation, robustness, and checkpoint machinery above it is
// backend-agnostic, so a checkpoint written under one engine restores
// under another.
type Session struct {
	opt SessionOptions
	a   algo.Algorithm
	eng engineBackend

	validator *stream.Validator
	rob       *stats.Collector

	lastMetrics *stats.Collector
	lastCycles  float64

	closed bool
}

// initRobustness sets up the session's validator and robustness counters
// from its options; called from every constructor path.
func (s *Session) initRobustness() {
	s.rob = stats.NewCollector()
	if s.opt.Validation != ValidationNone {
		maxV := s.opt.MaxVertices
		if maxV <= 0 {
			maxV = s.eng.numVertices()
		}
		s.validator = stream.NewValidator(s.opt.Validation, maxV, s.rob)
	}
}

// NewSession builds the initial graph from edges (nil for an empty graph
// over numVertices vertices) and converges the algorithm on it. When a
// validation policy is set, the initial edge list is screened under the
// same policy as streamed batches.
func NewSession(a Algorithm, edges []Edge, numVertices int, opt SessionOptions) (*Session, error) {
	if a == nil {
		return nil, fmt.Errorf("tdgraph: nil algorithm")
	}
	if opt.Cores <= 0 {
		opt.Cores = 8
	}
	if opt.Engine == EngineNativeParallel && opt.Simulate {
		return nil, fmt.Errorf("tdgraph: the native parallel engine cannot be simulated")
	}
	rob := stats.NewCollector()
	var validator *stream.Validator
	if opt.Validation != ValidationNone {
		maxV := opt.MaxVertices
		if maxV <= 0 {
			maxV = numVertices
		}
		validator = stream.NewValidator(opt.Validation, maxV, rob)
		asUpdates := make([]Update, len(edges))
		for i, e := range edges {
			asUpdates[i] = Update{Edge: e}
		}
		clean, err := validator.Sanitize(asUpdates)
		if err != nil {
			return nil, fmt.Errorf("tdgraph: initial edge list: %w", err)
		}
		if len(clean) != len(edges) {
			edges = make([]Edge, len(clean))
			for i, u := range clean {
				edges[i] = u.Edge
			}
		}
	}
	eng, err := newBackend(a, numVertices, edges, nil, opt)
	if err != nil {
		return nil, err
	}
	return &Session{opt: opt, a: a, eng: eng, validator: validator, rob: rob}, nil
}

// newBackend constructs the engine backend for opt. A nil warm converges
// the initial fixpoint from scratch; non-nil states (a restored
// checkpoint) are installed verbatim.
func newBackend(a Algorithm, numVertices int, edges []Edge, warm []float64, opt SessionOptions) (engineBackend, error) {
	if opt.Engine == EngineNativeParallel {
		return newNativeBackend(a, graph.NewStoreFromEdges(numVertices, edges), warm, opt)
	}
	b := graph.NewBuilderFromEdges(numVertices, edges)
	snap := b.Snapshot()
	sb := &simBackend{opt: opt, a: a, b: b, snap: snap, state: warm}
	if warm == nil {
		sb.state = algo.Reference(a, snap)
	} else if len(warm) != snap.NumVertices {
		return nil, fmt.Errorf("tdgraph: %d states for %d vertices", len(warm), snap.NumVertices)
	}
	return sb, nil
}

// Close releases engine resources — the native engine's persistent
// worker pool in particular. The session must not be used afterwards;
// safe to call more than once. Sessions on the functional or simulated
// engines hold no pooled resources, so Close is optional for them.
func (s *Session) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.eng.close()
}

// NumVertices returns the current vertex count (batches referencing new
// vertex IDs grow it).
func (s *Session) NumVertices() int { return s.eng.numVertices() }

// NumEdges returns the current edge count.
func (s *Session) NumEdges() int { return s.eng.numEdges() }

// State returns v's converged state (e.g. its distance, label, or rank).
func (s *Session) State(v VertexID) float64 { return s.eng.states()[v] }

// States returns the full converged state vector. The slice aliases the
// session and is invalidated by the next ApplyBatch.
func (s *Session) States() []float64 { return s.eng.states() }

// Graph returns the current immutable snapshot. Under the native engine
// this seals the mutable store on first call after a batch and caches
// the view until the next mutation.
func (s *Session) Graph() *Snapshot { return s.eng.snapshot() }

// Metrics returns the metric collector of the last ApplyBatch (nil before
// the first batch). Simulated sessions additionally expose cycle counts
// via LastCycles.
func (s *Session) Metrics() *stats.Collector { return s.lastMetrics }

// LastCycles returns the simulated cycle count of the last batch (zero in
// functional mode).
func (s *Session) LastCycles() float64 { return s.lastCycles }

// PanicError is an engine or builder panic converted to an error at the
// public API boundary, with the operation and stack that produced it. The
// session it escaped from has already been healed (states recomputed from
// the current graph), so the caller may keep streaming.
type PanicError struct {
	Op    string // the operation that panicked, e.g. "ApplyBatch"
	Value any    // the recovered panic value
	Stack []byte // stack captured at recovery
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("tdgraph: panic in %s: %v", e.Op, e.Value)
}

// ApplyBatch applies the updates to the graph and incrementally repairs
// the algorithm states. It returns what the batch changed.
//
// Robustness: when a validation policy is set the batch is screened
// first (under ValidationReject a malformed batch returns a typed error
// and changes nothing). A panic anywhere in batch application or engine
// processing is converted to a *PanicError and the session self-heals by
// recomputing from the current graph — no panic escapes and the session
// stays usable. With SelfCheck set, a post-batch audit of the fixpoint
// invariant triggers a transparent recompute on divergence.
func (s *Session) ApplyBatch(batch []Update) (ApplyResult, error) {
	if s.validator != nil {
		clean, err := s.validator.Sanitize(batch)
		if err != nil {
			return ApplyResult{}, err
		}
		batch = clean
	}
	res, err := s.applyBatchProtected(batch)
	if err != nil {
		return res, err
	}
	if s.opt.SelfCheck {
		s.CheckAndRepair()
	}
	return res, nil
}

// applyBatchProtected runs the actual batch application under a recover
// barrier: any panic heals the session and comes back as a *PanicError.
func (s *Session) applyBatchProtected(batch []Update) (res ApplyResult, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &PanicError{Op: "ApplyBatch", Value: p, Stack: debug.Stack()}
			s.rob.Inc(stats.CtrPanicsRecovered)
			s.healAfterPanic()
		}
	}()

	var col *stats.Collector
	var cycles float64
	res, col, cycles = s.eng.apply(batch)
	if col != nil {
		s.lastMetrics = col
	}
	if s.opt.Simulate {
		s.lastCycles = cycles
	}
	return res, nil
}

// healAfterPanic restores the session to a consistent shape after a
// recovered panic: the backend's graph is still consistent (store and
// builder mutations are per-update, not partial), so the states are
// recomputed from scratch on it. The recompute runs the algorithm's own
// code — the very code that may have panicked — so it is protected too:
// if it panics again the states are merely padded to the graph's shape,
// keeping the session usable for inspection and checkpointing.
func (s *Session) healAfterPanic() {
	defer func() {
		if recover() != nil {
			s.eng.padStates()
		}
	}()
	s.eng.recompute()
	s.rob.Inc(stats.CtrDegradedRecomputes)
}

// Audit checks the local-fixpoint invariant of the current states
// without repairing anything. It returns the first divergent vertex and
// false on divergence, or (0, true) when the states are consistent.
func (s *Session) Audit() (VertexID, bool) {
	v, ok := engine.AuditStates(s.a, s.eng.snapshot(), s.eng.states())
	if !ok {
		s.rob.Inc(stats.CtrAuditDivergence)
	}
	return v, ok
}

// CheckAndRepair audits the current states and, on divergence, degrades
// gracefully: the states are recomputed from scratch on the current
// snapshot and the event is recorded in RobustStats. It reports whether a
// repair happened.
func (s *Session) CheckAndRepair() bool {
	if _, ok := s.Audit(); ok {
		return false
	}
	s.rob.Inc(stats.CtrDegradedRecomputes)
	s.Recompute()
	return true
}

// RobustStats returns the session's robustness counters: validation
// actions per class, recovered panics, audit divergences, and degraded
// recomputes. The collector accumulates over the session's lifetime.
func (s *Session) RobustStats() *stats.Collector { return s.rob }

// Quarantined returns the vertices currently quarantined by the
// ValidationQuarantine policy (nil otherwise).
func (s *Session) Quarantined() map[VertexID]struct{} {
	if s.validator == nil {
		return nil
	}
	return s.validator.Quarantined()
}

// Recompute converges the algorithm from scratch on the current graph
// and replaces the session states — useful to bound accumulated
// floating-point drift on very long accumulative streams, and in tests
// as the oracle.
func (s *Session) Recompute() {
	s.eng.recompute()
}
