// PageRank trending monitor: maintain incremental PageRank over a
// citation/mention graph as new links stream in, reporting the top movers
// after each batch and the hot vertices the VSCU would coalesce.
//
//	go run ./examples/pagerank-monitor
package main

import (
	"fmt"
	"sort"

	"github.com/tdgraph/tdgraph/internal/algo"
	"github.com/tdgraph/tdgraph/internal/core"
	"github.com/tdgraph/tdgraph/internal/engine"
	"github.com/tdgraph/tdgraph/internal/graph"
	"github.com/tdgraph/tdgraph/internal/graph/gen"
	"github.com/tdgraph/tdgraph/internal/stats"
	"github.com/tdgraph/tdgraph/internal/stream"
)

const pages = 30_000

func main() {
	// A power-law mention graph; the stream plays the remaining half of
	// the crawl in as link additions mixed with link-rot deletions.
	edges := gen.RMAT(gen.RMATConfig{
		NumVertices: pages, NumEdges: pages * 8,
		A: 0.57, B: 0.19, C: 0.19, Seed: 11, MaxWeight: 1,
	})
	w := stream.Build(edges, pages, stream.Config{
		WarmupFraction: 0.5, BatchSize: 5_000, AddFraction: 0.8, NumBatches: 3, Seed: 11,
	})
	b := w.WarmupBuilder()
	oldG := b.Snapshot()

	pr := algo.NewPageRank()
	ranks := algo.Reference(pr, oldG)
	fmt.Printf("corpus: %d pages, %d links; initial top pages: %v\n",
		pages, oldG.NumEdges(), topK(ranks, 3))

	for i, batch := range w.Batches {
		prev := make([]float64, len(ranks))
		copy(prev, ranks)

		res := b.Apply(batch)
		newG := b.Snapshot()

		col := stats.NewCollector()
		rt := engine.NewRuntime(pr, oldG, newG, ranks, engine.Options{Cores: 8, Collector: col})
		td := core.New(core.DefaultConfig(), rt)
		td.Process(res)
		ranks = rt.S
		oldG = newG

		fmt.Printf("\nbatch %d: +%d links, -%d links (%d update ops, %d rounds)\n",
			i+1, res.Added, res.Deleted,
			col.Get(stats.CtrStateUpdates), col.Get(stats.CtrIterations))
		fmt.Printf("  top pages now: %v\n", topK(ranks, 3))
		fmt.Printf("  biggest movers: %v\n", movers(prev, ranks, 3))
		if hot := col.Get(stats.CtrHotHits); hot > 0 {
			fmt.Printf("  VSCU served %d hot-state accesses from Coalesced_States\n", hot)
		}
	}
}

// topK returns the k highest-ranked page IDs.
func topK(ranks []float64, k int) []graph.VertexID {
	idx := make([]graph.VertexID, len(ranks))
	for i := range idx {
		idx[i] = graph.VertexID(i)
	}
	sort.Slice(idx, func(a, b int) bool { return ranks[idx[a]] > ranks[idx[b]] })
	return idx[:k]
}

// movers returns the k pages whose rank changed the most.
func movers(before, after []float64, k int) []graph.VertexID {
	idx := make([]graph.VertexID, len(after))
	for i := range idx {
		idx[i] = graph.VertexID(i)
	}
	delta := func(v graph.VertexID) float64 {
		d := after[v] - before[v]
		if d < 0 {
			return -d
		}
		return d
	}
	sort.Slice(idx, func(a, b int) bool { return delta(idx[a]) > delta(idx[b]) })
	return idx[:k]
}
