// Social-network community monitoring: track connected components of a
// friendship graph as friendships form and dissolve, streaming batch by
// batch, and report component merges and splits after every batch.
//
// Friendships are symmetric, so each logical friendship becomes two
// directed edges and the CC labels are weakly-connected components.
//
//	go run ./examples/socialnetwork
package main

import (
	"fmt"
	"math/rand"

	"github.com/tdgraph/tdgraph/internal/algo"
	"github.com/tdgraph/tdgraph/internal/core"
	"github.com/tdgraph/tdgraph/internal/engine"
	"github.com/tdgraph/tdgraph/internal/graph"
	"github.com/tdgraph/tdgraph/internal/graph/gen"
)

const members = 20_000

func main() {
	// A clustered friendship graph: isolated small-world communities of
	// 100 members each; the stream's new friendships gradually stitch
	// them together, so the component count actually moves.
	const communitySize = 100
	var base []graph.Edge
	for start := 0; start < members; start += communitySize {
		comm := gen.WattsStrogatz(gen.WattsStrogatzConfig{
			NumVertices: communitySize, K: 3, Beta: 0.05,
			Seed: int64(start), MaxWeight: 1,
		})
		for _, e := range comm {
			base = append(base, graph.Edge{
				Src:    e.Src + graph.VertexID(start),
				Dst:    e.Dst + graph.VertexID(start),
				Weight: 1,
			})
		}
	}
	b := graph.NewBuilderFromEdges(members, base)
	oldG := b.Snapshot()

	cc := algo.NewCC()
	states := algo.Reference(cc, oldG)
	fmt.Printf("initial network: %d members, %d friendship edges, %d communities\n",
		members, oldG.NumEdges(), countComponents(states))

	rng := rand.New(rand.NewSource(42))
	for day := 1; day <= 5; day++ {
		// Each "day", some friendships form and some dissolve —
		// symmetric pairs of directed edges.
		var batch []graph.Update
		for i := 0; i < 300; i++ {
			u := graph.VertexID(rng.Intn(members))
			v := graph.VertexID(rng.Intn(members))
			if u == v {
				continue
			}
			batch = append(batch,
				graph.Update{Edge: graph.Edge{Src: u, Dst: v, Weight: 1}},
				graph.Update{Edge: graph.Edge{Src: v, Dst: u, Weight: 1}},
			)
		}
		snap := b.SnapshotWithoutCSC()
		for i := 0; i < 100; i++ {
			u := graph.VertexID(rng.Intn(members))
			ns := snap.OutNeighbors(u)
			if len(ns) == 0 {
				continue
			}
			v := ns[rng.Intn(len(ns))]
			batch = append(batch,
				graph.Update{Edge: graph.Edge{Src: u, Dst: v}, Delete: true},
				graph.Update{Edge: graph.Edge{Src: v, Dst: u}, Delete: true},
			)
		}

		res := b.Apply(batch)
		newG := b.Snapshot()

		// Incremental component repair with the topology-driven engine
		// (native mode: no architectural simulation, just the result).
		rt := engine.NewRuntime(cc, oldG, newG, states, engine.Options{Cores: 8})
		td := core.New(core.DefaultConfig(), rt)
		td.Process(res)
		states = rt.S
		oldG = newG

		fmt.Printf("day %d: +%d -%d friendships → %d communities (largest %d members)\n",
			day, res.Added, res.Deleted, countComponents(states), largestComponent(states))
	}
}

// countComponents counts distinct labels.
func countComponents(states []float64) int {
	seen := make(map[float64]struct{}, 256)
	for _, s := range states {
		seen[s] = struct{}{}
	}
	return len(seen)
}

// largestComponent returns the size of the biggest community.
func largestComponent(states []float64) int {
	counts := make(map[float64]int, 256)
	best := 0
	for _, s := range states {
		counts[s]++
		if counts[s] > best {
			best = counts[s]
		}
	}
	return best
}
