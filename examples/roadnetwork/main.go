// Road-network re-routing: maintain shortest travel times from a depot
// over a road network while congestion closes and reopens road segments,
// using the real parallel (native) engines — this is the library's fast
// path, the same code the paper's Fig 14 "real platform" comparison runs.
//
//	go run ./examples/roadnetwork
package main

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/tdgraph/tdgraph/internal/algo"
	"github.com/tdgraph/tdgraph/internal/graph"
	"github.com/tdgraph/tdgraph/internal/graph/gen"
	"github.com/tdgraph/tdgraph/internal/native"
)

const intersections = 50_000

func main() {
	// A road-like network: a grid-ish small world with few shortcuts
	// (long diameter, low degree), symmetric roads with travel-time
	// weights.
	roads := gen.WattsStrogatz(gen.WattsStrogatzConfig{
		NumVertices: intersections, K: 2, Beta: 0.01, Seed: 3, MaxWeight: 30,
	})
	b := graph.NewBuilderFromEdges(intersections, roads)
	oldG := b.Snapshot()

	depot := graph.VertexID(0)
	sssp := algo.NewSSSP(depot)
	fmt.Print("computing initial routes from depot... ")
	start := time.Now()
	times := algo.Reference(sssp, oldG)
	fmt.Printf("done in %s (%d reachable intersections)\n",
		time.Since(start).Round(time.Millisecond), reachable(times))

	rng := rand.New(rand.NewSource(99))
	closed := []graph.Edge{}
	for hour := 8; hour <= 12; hour++ {
		var batch []graph.Update
		// Congestion closes some segments...
		snap := b.SnapshotWithoutCSC()
		for i := 0; i < 200; i++ {
			u := graph.VertexID(rng.Intn(intersections))
			ns := snap.OutNeighbors(u)
			ws := snap.OutWeights(u)
			if len(ns) == 0 {
				continue
			}
			j := rng.Intn(len(ns))
			e := graph.Edge{Src: u, Dst: ns[j], Weight: ws[j]}
			batch = append(batch, graph.Update{Edge: e, Delete: true})
			closed = append(closed, e)
		}
		// ...while earlier closures reopen.
		reopen := len(closed) / 2
		for _, e := range closed[:reopen] {
			batch = append(batch, graph.Update{Edge: e})
		}
		closed = closed[reopen:]

		res := b.Apply(batch)
		newG := b.Snapshot()

		start = time.Now()
		times = native.TopologyDriven(sssp, oldG, newG, times, res, native.Config{})
		elapsed := time.Since(start)
		oldG = newG

		fmt.Printf("%02d:00  closed %d, reopened %d segments → re-routed in %s (%d reachable, mean travel time %.1f)\n",
			hour, res.Deleted, res.Added, elapsed.Round(time.Microsecond),
			reachable(times), meanTime(times))
	}

	// Spot check: the incremental result matches a fresh computation.
	want := algo.Reference(sssp, oldG)
	if i := algo.StatesEqual(times, want, 1e-9); i >= 0 {
		fmt.Printf("WARNING: mismatch at intersection %d\n", i)
		return
	}
	fmt.Println("final routes verified against full recomputation ✓")
}

func reachable(times []float64) int {
	n := 0
	for _, t := range times {
		if !math.IsInf(t, 1) {
			n++
		}
	}
	return n
}

func meanTime(times []float64) float64 {
	var sum float64
	n := 0
	for _, t := range times {
		if !math.IsInf(t, 1) {
			sum += t
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
