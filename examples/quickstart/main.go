// Quickstart: the public tdgraph API. Build a streaming graph session,
// apply update batches, and read incrementally maintained shortest paths
// — then attach the architectural simulator to see what the TDGraph
// hardware engine would do with the same batch.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	tdgraph "github.com/tdgraph/tdgraph"
	"github.com/tdgraph/tdgraph/internal/graph/gen"
	"github.com/tdgraph/tdgraph/internal/stats"
)

func main() {
	// A synthetic power-law graph stands in for a real edge list (use
	// tdgraph.LoadSNAPFile to read SNAP data instead).
	edges := gen.RMAT(gen.RMATConfig{
		NumVertices: 10_000, NumEdges: 60_000,
		A: 0.57, B: 0.19, C: 0.19, Seed: 1, MaxWeight: 16,
	})

	// 1. A session converges SSSP on the initial graph and keeps it
	// converged across update batches.
	session, err := tdgraph.NewSession(tdgraph.NewSSSP(0), edges, 10_000, tdgraph.SessionOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial graph: %d vertices, %d edges; dist(0→100) = %v\n",
		session.NumVertices(), session.NumEdges(), session.State(100))

	// 2. Stream a batch of edge additions and deletions.
	batch := []tdgraph.Update{
		{Edge: tdgraph.Edge{Src: 0, Dst: 9_999, Weight: 2}},
		{Edge: tdgraph.Edge{Src: 9_999, Dst: 100, Weight: 1}},
	}
	res, err := session.ApplyBatch(batch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch applied: +%d -%d edges, %d affected vertices\n",
		res.Added, res.Deleted, len(res.Affected))
	fmt.Printf("dist(0→9999) = %v, dist(0→100) = %v (shortcut found)\n",
		session.State(9_999), session.State(100))

	// 3. Verify against a full recomputation.
	before := session.State(100)
	session.Recompute()
	if session.State(100) != before {
		log.Fatal("incremental result differs from recompute")
	}
	fmt.Println("incremental result matches full recomputation ✓")

	// 4. The same batch on the simulated 64-core machine with the
	// TDGraph hardware engine attached — this is what the benchmark
	// harness measures.
	simulated, err := tdgraph.NewSession(tdgraph.NewSSSP(0), edges, 10_000,
		tdgraph.SessionOptions{Simulate: true, Cores: 64})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := simulated.ApplyBatch(batch); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated TDGraph-H: %.0f cycles, %d state update operations\n",
		simulated.LastCycles(), simulated.Metrics().Get(stats.CtrStateUpdates))
}
