package tdgraph_test

import (
	"fmt"

	tdgraph "github.com/tdgraph/tdgraph"
)

// ExampleSession demonstrates the basic streaming lifecycle: converge,
// stream a batch, read updated results.
func ExampleSession() {
	edges := []tdgraph.Edge{
		{Src: 0, Dst: 1, Weight: 4},
		{Src: 1, Dst: 2, Weight: 4},
	}
	s, _ := tdgraph.NewSession(tdgraph.NewSSSP(0), edges, 3, tdgraph.SessionOptions{})
	fmt.Println("before:", s.State(2))

	// A shortcut arrives.
	s.ApplyBatch([]tdgraph.Update{{Edge: tdgraph.Edge{Src: 0, Dst: 2, Weight: 3}}})
	fmt.Println("after: ", s.State(2))
	// Output:
	// before: 8
	// after:  3
}

// ExampleSession_deletion shows incremental repair when an edge carrying
// the current best path is removed.
func ExampleSession_deletion() {
	edges := []tdgraph.Edge{
		{Src: 0, Dst: 1, Weight: 1},
		{Src: 0, Dst: 2, Weight: 9},
		{Src: 1, Dst: 2, Weight: 1},
	}
	s, _ := tdgraph.NewSession(tdgraph.NewSSSP(0), edges, 3, tdgraph.SessionOptions{})
	fmt.Println("via 1:", s.State(2))

	s.ApplyBatch([]tdgraph.Update{{Edge: tdgraph.Edge{Src: 1, Dst: 2}, Delete: true}})
	fmt.Println("direct:", s.State(2))
	// Output:
	// via 1: 2
	// direct: 9
}

// ExampleSession_pageRank maintains incremental PageRank as links arrive.
func ExampleSession_pageRank() {
	edges := []tdgraph.Edge{
		{Src: 1, Dst: 0, Weight: 1},
		{Src: 2, Dst: 0, Weight: 1},
	}
	s, _ := tdgraph.NewSession(tdgraph.NewPageRank(), edges, 4, tdgraph.SessionOptions{})
	before := s.State(0)

	// A third page starts linking to page 0: its rank rises.
	s.ApplyBatch([]tdgraph.Update{{Edge: tdgraph.Edge{Src: 3, Dst: 0, Weight: 1}}})
	fmt.Println(s.State(0) > before)
	// Output: true
}
