package tdgraph_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	tdgraph "github.com/tdgraph/tdgraph"
	"github.com/tdgraph/tdgraph/internal/stats"
)

// TestCheckpointerMetaRotation: metadata sidecars rotate with their
// generations, LoadWithMeta returns the newest pair, and Metas exposes
// the retained history newest-first.
func TestCheckpointerMetaRotation(t *testing.T) {
	edges, nv := sessionEdges()
	s, err := tdgraph.NewSession(tdgraph.NewCC(), edges, nv, tdgraph.SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ck := tdgraph.NewCheckpointer(filepath.Join(t.TempDir(), "ckpt.tds"))

	if err := ck.SaveWithMeta(s, []byte("seq-10")); err != nil {
		t.Fatal(err)
	}
	if err := ck.SaveWithMeta(s, []byte("seq-20")); err != nil {
		t.Fatal(err)
	}

	restored, meta, skipped, err := ck.LoadWithMeta(tdgraph.NewCC(), tdgraph.SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Fatalf("clean generations skipped: %v", skipped)
	}
	if !bytes.Equal(meta, []byte("seq-20")) {
		t.Fatalf("meta = %q, want the newest generation's", meta)
	}
	if restored.NumEdges() != s.NumEdges() {
		t.Fatal("restored session has wrong shape")
	}

	metas := ck.Metas()
	if len(metas) != 2 || !bytes.Equal(metas[0], []byte("seq-20")) || !bytes.Equal(metas[1], []byte("seq-10")) {
		t.Fatalf("Metas() = %q, want newest-first history", metas)
	}
}

// TestCheckpointerMetaMissingFallsBack: a crash between the checkpoint
// write and its sidecar write leaves a generation without metadata —
// recovery must skip it (it cannot know what that checkpoint covers)
// and restore the older pair, counting the degradation.
func TestCheckpointerMetaMissingFallsBack(t *testing.T) {
	edges, nv := sessionEdges()
	s, err := tdgraph.NewSession(tdgraph.NewCC(), edges, nv, tdgraph.SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ck := tdgraph.NewCheckpointer(filepath.Join(t.TempDir(), "ckpt.tds"))
	if err := ck.SaveWithMeta(s, []byte("seq-10")); err != nil {
		t.Fatal(err)
	}
	// Plain Save = checkpoint written, sidecar never made it.
	if err := ck.Save(s); err != nil {
		t.Fatal(err)
	}

	restored, meta, skipped, err := ck.LoadWithMeta(tdgraph.NewCC(), tdgraph.SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(meta, []byte("seq-10")) {
		t.Fatalf("meta = %q, want the fallback generation's", meta)
	}
	if len(skipped) != 1 {
		t.Fatalf("skipped %v, want exactly the meta-less newest generation", skipped)
	}
	var ce *tdgraph.CheckpointError
	if !errors.As(skipped[0].Err, &ce) || ce.Stage != "meta" {
		t.Fatalf("skip reason %v, want a meta-stage *CheckpointError", skipped[0].Err)
	}
	if restored.RobustStats().Get(stats.CtrCheckpointRecovered) != 1 {
		t.Fatal("fallback restore not counted")
	}
}

// TestCheckpointerMetaCorruptionTyped: a bit-flipped or truncated
// sidecar reads as a typed *CheckpointError carrying the corruption
// sentinel, and LoadWithMeta degrades past it.
func TestCheckpointerMetaCorruptionTyped(t *testing.T) {
	edges, nv := sessionEdges()
	s, err := tdgraph.NewSession(tdgraph.NewCC(), edges, nv, tdgraph.SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ck := tdgraph.NewCheckpointer(filepath.Join(t.TempDir(), "ckpt.tds"))
	if err := ck.SaveWithMeta(s, []byte("seq-10")); err != nil {
		t.Fatal(err)
	}
	if err := ck.SaveWithMeta(s, []byte("seq-20")); err != nil {
		t.Fatal(err)
	}
	metaPath := ck.Path + ".meta"
	data, err := os.ReadFile(metaPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF // flip a payload bit: CRC must catch it
	if err := os.WriteFile(metaPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, meta, skipped, err := ck.LoadWithMeta(tdgraph.NewCC(), tdgraph.SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(meta, []byte("seq-10")) {
		t.Fatalf("meta = %q, want the older good generation's", meta)
	}
	if len(skipped) != 1 || !errors.Is(skipped[0].Err, tdgraph.ErrCheckpointCorrupt) {
		t.Fatalf("skip reason %v, want ErrCheckpointCorrupt", skipped)
	}

	// Metas mirrors the damage: nil for the corrupt newest sidecar.
	metas := ck.Metas()
	if metas[0] != nil || !bytes.Equal(metas[1], []byte("seq-10")) {
		t.Fatalf("Metas() = %q, want [nil seq-10]", metas)
	}
}

// TestCheckpointerNoValidPair: when no generation has both a good
// checkpoint and a good sidecar, LoadWithMeta fails typed instead of
// guessing.
func TestCheckpointerNoValidPair(t *testing.T) {
	edges, nv := sessionEdges()
	s, err := tdgraph.NewSession(tdgraph.NewCC(), edges, nv, tdgraph.SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ck := tdgraph.NewCheckpointer(filepath.Join(t.TempDir(), "ckpt.tds"))
	if err := ck.Save(s); err != nil { // checkpoint without sidecar
		t.Fatal(err)
	}
	_, _, _, err = ck.LoadWithMeta(tdgraph.NewCC(), tdgraph.SessionOptions{})
	if err == nil {
		t.Fatal("restore without any valid generation+meta pair succeeded")
	}
	var ce *tdgraph.CheckpointError
	if !errors.As(err, &ce) {
		t.Fatalf("failure untyped: %T %v", err, err)
	}
}
