package tdgraph_test

import (
	"errors"
	"math"
	"testing"

	tdgraph "github.com/tdgraph/tdgraph"
	"github.com/tdgraph/tdgraph/internal/algo"
	"github.com/tdgraph/tdgraph/internal/fault"
	"github.com/tdgraph/tdgraph/internal/stats"
	"github.com/tdgraph/tdgraph/internal/stream"
)

// TestSessionValidationPolicies drives one hostile batch through each
// validation policy and checks the session reacts per the ladder.
func TestSessionValidationPolicies(t *testing.T) {
	edges, nv := sessionEdges()
	hostile := []tdgraph.Update{
		{Edge: tdgraph.Edge{Src: 1, Dst: 2, Weight: 1}},                           // fine
		{Edge: tdgraph.Edge{Src: tdgraph.VertexID(nv + 100), Dst: 2, Weight: 1}},  // out of range
		{Edge: tdgraph.Edge{Src: 3, Dst: 4, Weight: float32(math.NaN())}},         // bad weight
		{Edge: tdgraph.Edge{Src: 5, Dst: 5, Weight: 1}},                           // self-loop
	}

	t.Run("reject", func(t *testing.T) {
		s, err := tdgraph.NewSession(tdgraph.NewCC(), edges, nv,
			tdgraph.SessionOptions{Validation: tdgraph.ValidationReject})
		if err != nil {
			t.Fatal(err)
		}
		before := s.NumEdges()
		_, err = s.ApplyBatch(hostile)
		var ve *stream.ValidationError
		if !errors.As(err, &ve) {
			t.Fatalf("want *stream.ValidationError, got %T %v", err, err)
		}
		if s.NumEdges() != before {
			t.Fatal("rejected batch still changed the graph")
		}
	})

	t.Run("clamp", func(t *testing.T) {
		s, err := tdgraph.NewSession(tdgraph.NewCC(), edges, nv,
			tdgraph.SessionOptions{Validation: tdgraph.ValidationClamp})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.ApplyBatch(hostile); err != nil {
			t.Fatalf("clamp policy errored: %v", err)
		}
		rs := s.RobustStats()
		if rs.Get(stats.CtrValOutOfRange) != 1 || rs.Get(stats.CtrValSelfLoop) != 1 ||
			rs.Get(stats.CtrValBadWeight) != 1 || rs.Get(stats.CtrValClamped) != 1 ||
			rs.Get(stats.CtrValDropped) != 2 {
			t.Fatalf("counters: %v", rs.Snapshot())
		}
		// The surviving states must match a reference recompute.
		if v, ok := s.Audit(); !ok {
			t.Fatalf("post-clamp states diverge at %d", v)
		}
	})

	t.Run("quarantine", func(t *testing.T) {
		s, err := tdgraph.NewSession(tdgraph.NewCC(), edges, nv,
			tdgraph.SessionOptions{Validation: tdgraph.ValidationQuarantine})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.ApplyBatch(hostile); err != nil {
			t.Fatal(err)
		}
		q := s.Quarantined()
		if _, ok := q[3]; !ok {
			t.Fatalf("endpoint of bad-weight update not quarantined: %v", q)
		}
		// A follow-up clean update touching a quarantined vertex is diverted.
		before := s.NumEdges()
		if _, err := s.ApplyBatch([]tdgraph.Update{
			{Edge: tdgraph.Edge{Src: 3, Dst: 9, Weight: 1}},
		}); err != nil {
			t.Fatal(err)
		}
		if s.NumEdges() != before {
			t.Fatal("update touching a quarantined vertex was applied")
		}
		if s.RobustStats().Get(stats.CtrValQuarantineHits) != 1 {
			t.Fatalf("quarantine hit not counted: %v", s.RobustStats().Snapshot())
		}
	})
}

// panicAlgo wraps a monotonic algorithm and panics in Propagate while
// armed — modelling a transient data-dependent crash in user algorithm
// code, the realistic panic source inside ApplyBatch. It disarms itself
// after one panic so the session's self-heal recompute can succeed.
type panicAlgo struct {
	algo.MonotonicAlgo
	armed bool
}

func (p *panicAlgo) Propagate(srcVal float64, w float32) float64 {
	if p.armed {
		p.armed = false
		panic("panicAlgo: injected propagate crash")
	}
	return p.MonotonicAlgo.Propagate(srcVal, w)
}

// TestSessionPanicRecovery arms a panicking algorithm mid-stream: the
// API must convert the panic to *PanicError and self-heal — subsequent
// batches work and states match the oracle.
func TestSessionPanicRecovery(t *testing.T) {
	edges, nv := sessionEdges()
	pa := &panicAlgo{MonotonicAlgo: algo.MonotonicAlgo(tdgraph.NewSSSP(0))}
	s, err := tdgraph.NewSession(pa, edges, nv, tdgraph.SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pa.armed = true
	_, err = s.ApplyBatch([]tdgraph.Update{
		{Edge: tdgraph.Edge{Src: 0, Dst: 7, Weight: 1}},
	})
	var pe *tdgraph.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %T %v", err, err)
	}
	if pe.Op != "ApplyBatch" || len(pe.Stack) == 0 {
		t.Fatalf("panic context incomplete: Op=%q stack=%d bytes", pe.Op, len(pe.Stack))
	}
	if s.RobustStats().Get(stats.CtrPanicsRecovered) != 1 {
		t.Fatalf("recovery not counted: %v", s.RobustStats().Snapshot())
	}
	// The healed session keeps streaming correctly.
	if _, err := s.ApplyBatch([]tdgraph.Update{
		{Edge: tdgraph.Edge{Src: 1, Dst: 2, Weight: 1}},
	}); err != nil {
		t.Fatalf("post-heal batch failed: %v", err)
	}
	if v, ok := s.Audit(); !ok {
		t.Fatalf("post-heal states diverge at %d", v)
	}
}

// alwaysPanicAlgo panics in every Propagate call while armed — the
// persistent-crash case, where even the self-heal recompute panics.
type alwaysPanicAlgo struct {
	algo.MonotonicAlgo
	armed bool
}

func (p *alwaysPanicAlgo) Propagate(srcVal float64, w float32) float64 {
	if p.armed {
		panic("alwaysPanicAlgo: injected propagate crash")
	}
	return p.MonotonicAlgo.Propagate(srcVal, w)
}

// TestSessionPanicInHeal arms a persistently panicking algorithm: even
// when the self-heal recompute panics again, no panic escapes and the
// session keeps a shape-consistent state vector.
func TestSessionPanicInHeal(t *testing.T) {
	edges, nv := sessionEdges()
	pa := &alwaysPanicAlgo{MonotonicAlgo: algo.MonotonicAlgo(tdgraph.NewSSSP(0))}
	s, err := tdgraph.NewSession(pa, edges, nv, tdgraph.SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pa.armed = true
	_, err = s.ApplyBatch([]tdgraph.Update{
		{Edge: tdgraph.Edge{Src: 0, Dst: 7, Weight: 1}},
	})
	var perr *tdgraph.PanicError
	if !errors.As(err, &perr) {
		t.Fatalf("want *PanicError, got %T %v", err, err)
	}
	if len(s.States()) != s.NumVertices() {
		t.Fatalf("state vector shape broken: %d states for %d vertices",
			len(s.States()), s.NumVertices())
	}
}

// TestSessionDivergenceDegradation corrupts converged states with the
// injector and verifies the audit detects it and CheckAndRepair degrades
// to a recompute whose result matches the reference.
func TestSessionDivergenceDegradation(t *testing.T) {
	edges, nv := sessionEdges()
	for _, mk := range []func() tdgraph.Algorithm{
		func() tdgraph.Algorithm { return tdgraph.NewSSSP(0) },
		func() tdgraph.Algorithm { return tdgraph.NewPageRank() },
	} {
		a := mk()
		s, err := tdgraph.NewSession(a, edges, nv, tdgraph.SessionOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if v, ok := s.Audit(); !ok {
			t.Fatalf("%s: converged session fails its own audit at %d", a.Name(), v)
		}
		in, _ := fault.Parse("diverge:5", 21)
		if idx := in.CorruptStates(s.States()); len(idx) == 0 {
			t.Fatal("injector corrupted nothing")
		}
		if _, ok := s.Audit(); ok {
			t.Fatalf("%s: audit missed injected divergence", a.Name())
		}
		if !s.CheckAndRepair() {
			t.Fatalf("%s: CheckAndRepair declined to repair", a.Name())
		}
		if v, ok := s.Audit(); !ok {
			t.Fatalf("%s: repaired states still diverge at %d", a.Name(), v)
		}
		rs := s.RobustStats()
		if rs.Get(stats.CtrDegradedRecomputes) != 1 {
			t.Fatalf("%s: degradation not counted: %v", a.Name(), rs.Snapshot())
		}
		if s.CheckAndRepair() {
			t.Fatalf("%s: consistent session repaired again", a.Name())
		}
	}
}

// TestSessionSelfCheck verifies the SelfCheck option audits (and repairs)
// transparently inside ApplyBatch.
func TestSessionSelfCheck(t *testing.T) {
	edges, nv := sessionEdges()
	s, err := tdgraph.NewSession(tdgraph.NewSSSP(0), edges, nv,
		tdgraph.SessionOptions{SelfCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	in, _ := fault.Parse("diverge:3", 33)
	in.CorruptStates(s.States())
	if _, err := s.ApplyBatch([]tdgraph.Update{
		{Edge: tdgraph.Edge{Src: 0, Dst: 42, Weight: 2}},
	}); err != nil {
		t.Fatal(err)
	}
	if s.RobustStats().Get(stats.CtrDegradedRecomputes) == 0 {
		t.Fatalf("self-check did not degrade: %v", s.RobustStats().Snapshot())
	}
	if v, ok := s.Audit(); !ok {
		t.Fatalf("self-checked session diverges at %d", v)
	}
}
